// Ablation: replicator timer granularity vs rate-control accuracy.
//
// §5.1: "the rate control precision depends on the minimal arrival time
// of template packets". The accelerator normally saturates the loop
// (6.4ns arrivals at 64B); this harness caps the number of loop copies to
// stretch the arrival interval and shows the inter-departure error growing
// with it — the design reason the accelerator exists at all.
#include "common.hpp"
#include "htps/sender.hpp"
#include "net/packet_builder.hpp"
#include "sim/stats.hpp"

namespace {

using namespace ht;

sim::ErrorMetrics run_with_copies(std::uint64_t copies) {
  sim::EventQueue ev;
  rmt::SwitchAsic asic(ev, rmt::AsicConfig{.num_ports = 2});
  htps::Sender sender(asic);
  htps::TemplateConfig cfg;
  cfg.spec.l4 = net::HeaderKind::kUdp;
  cfg.spec.header_init = {{net::FieldId::kIpv4Sip, 1}, {net::FieldId::kIpv4Dip, 2}};
  cfg.egress_ports = {1};
  cfg.interval_ns = 10'000;  // 100Kpps
  cfg.loop_copies = copies;
  sender.add_template(std::move(cfg));
  sender.install();

  // Absorb at a sink; record TX times at the switch port.
  sim::Port sink(ev, 99, 100.0);
  asic.port(1).connect(&sink);
  sink.connect(&asic.port(1));
  std::vector<std::uint64_t> times;
  std::size_t seen = 0;
  asic.port(1).on_transmit = [&](const net::Packet&, sim::TimeNs t) {
    if (seen++ >= 50) times.push_back(t);
  };
  sender.start();
  ev.run_until(sim::ms(30));
  return sim::compute_error_metrics(sim::inter_departure_times(times), 10'000.0);
}

}  // namespace

int main() {
  const rmt::TimingModel timing;
  bench::headline("Ablation: loop copies (timer granularity) vs rate accuracy",
                  "accuracy ~ arrival interval; full loop -> 6.4ns granularity");
  bench::row("%8s %16s %10s %10s %10s", "copies", "arrival gap", "MAE", "MAD", "RMSE");
  for (const std::uint64_t copies : {1ull, 4ull, 16ull, 64ull, 138ull}) {
    const auto m = run_with_copies(copies);
    const double gap = timing.firing_rtt_ns(64) / static_cast<double>(copies);
    bench::row("%8llu %14.1fns %8.1fns %8.1fns %8.1fns",
               static_cast<unsigned long long>(copies), gap, m.mae, m.mad, m.rmse);
  }
  return 0;
}
