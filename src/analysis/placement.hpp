// Pipeline placement model for htlint.
//
// The NTAPI backend emits logical tables (sender, editor, query operators)
// without assigning them to physical match-action stages — the simulator
// does not need stages, but the real ASIC does, and resource/allocation
// bugs live exactly in that gap (cf. "Testing Compilers for Programmable
// Switches Through Switch Hardware Simulation"). This model reconstructs a
// placement the way a Tofino-class backend would:
//
//  - every compiled construct becomes a `LogicalUnit` with an estimated
//    `rmt::ResourceUsage`, the registers it touches, and the PHV fields it
//    reads/writes;
//  - units are list-scheduled: a unit's earliest stage is one past its
//    match/data dependency, and it lands in the first stage from there
//    with room in every resource class (ingress and egress threads share
//    the physical stages, as on Tofino).
//
// The stage-fit pass reports placements needing more than
// AsicConfig::max_stages; the SALU and editor-order passes reuse the unit
// model for access-pattern checks.
#pragma once

#include <string>
#include <vector>

#include "net/fields.hpp"
#include "rmt/resources.hpp"

namespace ht::analysis {

struct AnalysisInput;

/// Which pipeline thread executes the unit.
enum class Thread : std::uint8_t { kIngress, kEgress };

/// Which packets can hit the unit's tables. Units gated on disjoint
/// classes never fire on the same packet, so they cannot conflict on a
/// register within one pipeline pass.
struct PacketClass {
  /// Template id for generated traffic; kForeign for received traffic.
  static constexpr int kForeign = -1;
  int id = kForeign;
  bool operator==(const PacketClass&) const = default;
};

struct RegisterAccess {
  std::string reg;
  bool write = false;
};

struct LogicalUnit {
  std::string name;   ///< generated-table name, e.g. "t_cuckoo_1"
  std::string where;  ///< diagnostic location, e.g. "query[1]"
  Thread thread = Thread::kIngress;
  PacketClass traffic;
  rmt::ResourceUsage usage;
  std::vector<RegisterAccess> registers;
  /// PHV fields the unit's actions read / write.
  std::vector<net::FieldId> reads;
  std::vector<net::FieldId> writes;
  /// Index of the unit this one must be placed after (match or data
  /// dependency); -1 for none. Chains express sequential table programs.
  int depends_on = -1;
  /// Origin markers so passes can refer back to the NTAPI program.
  int trigger = -1;  ///< owning trigger index, -1 when query-side
  int query = -1;    ///< owning query index, -1 when trigger-side
  int edit = -1;     ///< editor-op index within the template, -1 otherwise
};

struct Placement {
  std::vector<LogicalUnit> units;
  std::vector<int> stage_of;  ///< parallel to units
  /// Combined ingress+egress usage per stage (grown past max_stages when
  /// the program does not fit — that is what the stage-fit pass reports).
  std::vector<rmt::ResourceUsage> stage_usage;
  std::size_t stages_needed() const { return stage_usage.size(); }
};

/// Lower the compiled task into logical units, in pipeline program order.
std::vector<LogicalUnit> build_units(const AnalysisInput& in);

/// List-schedule units into stages against rmt::stage_capacity().
Placement place_pipeline(const AnalysisInput& in);

}  // namespace ht::analysis
