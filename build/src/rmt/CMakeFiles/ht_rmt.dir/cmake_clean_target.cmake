file(REMOVE_RECURSE
  "libht_rmt.a"
)
