// Unit tests for the §6.1 register FIFO.
#include <gtest/gtest.h>

#include "regfifo/register_fifo.hpp"

namespace ht::regfifo {
namespace {

TEST(RegisterFifo, FifoOrder) {
  rmt::RegisterFile rf;
  RegisterFifo q(rf, "q", 8, 2);
  q.enqueue({1, 10});
  q.enqueue({2, 20});
  q.enqueue({3, 30});
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.dequeue(), (std::vector<std::uint64_t>{1, 10}));
  EXPECT_EQ(q.dequeue(), (std::vector<std::uint64_t>{2, 20}));
  EXPECT_EQ(q.dequeue(), (std::vector<std::uint64_t>{3, 30}));
  EXPECT_TRUE(q.empty());
}

TEST(RegisterFifo, UnderflowGuard) {
  rmt::RegisterFile rf;
  RegisterFifo q(rf, "q", 4, 1);
  EXPECT_EQ(q.dequeue(), std::nullopt);  // the front-counter gate
  q.enqueue({7});
  EXPECT_EQ(q.dequeue(), std::vector<std::uint64_t>{7});
  EXPECT_EQ(q.dequeue(), std::nullopt);
  EXPECT_EQ(q.dequeued(), 1u);
}

TEST(RegisterFifo, OverflowDropsAndCounts) {
  rmt::RegisterFile rf;
  RegisterFifo q(rf, "q", 4, 1);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(q.enqueue({i}));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.enqueue({99}));  // the §6.1 overflow limitation
  EXPECT_EQ(q.overflows(), 1u);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.dequeue(), std::vector<std::uint64_t>{0});
}

TEST(RegisterFifo, WrapAroundManyTimes) {
  rmt::RegisterFile rf;
  RegisterFifo q(rf, "q", 4, 1);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.enqueue({i}));
    const auto rec = q.dequeue();
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ((*rec)[0], i);
  }
  EXPECT_EQ(q.enqueued(), 1000u);
  EXPECT_EQ(q.dequeued(), 1000u);
}

TEST(RegisterFifo, MultiLaneRecordsStayAligned) {
  rmt::RegisterFile rf;
  RegisterFifo q(rf, "q", 16, 4);
  for (std::uint64_t i = 0; i < 10; ++i) q.enqueue({i, i * 2, i * 3, i * 4});
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto rec = q.dequeue();
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(*rec, (std::vector<std::uint64_t>{i, i * 2, i * 3, i * 4}));
  }
}

TEST(RegisterFifo, RejectsBadShapes) {
  rmt::RegisterFile rf;
  EXPECT_THROW(RegisterFifo(rf, "bad1", 3, 1), std::invalid_argument);  // not power of two
  EXPECT_THROW(RegisterFifo(rf, "bad2", 8, 0), std::invalid_argument);  // no lanes
  RegisterFifo q(rf, "ok", 8, 2);
  EXPECT_THROW(q.enqueue({1}), std::invalid_argument);  // arity mismatch
}

TEST(RegisterFifo, BuiltFromRegisterArrays) {
  // The FIFO must be implementable with plain registers: its state is
  // visible through the register file, as on real hardware.
  rmt::RegisterFile rf;
  RegisterFifo q(rf, "vis", 8, 1);
  q.enqueue({123});
  EXPECT_EQ(rf.get("vis.rear").read(0), 1u);
  EXPECT_EQ(rf.get("vis.front").read(0), 0u);
  EXPECT_EQ(rf.get("vis.lane0").read(0), 123u);
}

}  // namespace
}  // namespace ht::regfifo
