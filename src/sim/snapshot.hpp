// Versioned, checksummed run-state snapshots (DESIGN.md §14).
//
// A snapshot is a flat container of named sections, each an opaque byte
// payload guarded by its own FNV-1a checksum, with one more checksum over
// the whole file. Sections are written in a fixed order by the engine
// (engine state first, then one group of sections per tester), so two
// snapshots of the same testbed state are byte-identical — which is what
// lets a restore *attest* itself: rebuild the testbed, replay
// deterministically to the snapshot time, re-serialize, and compare
// section bytes. Any divergence (corrupt file, version skew, lost
// determinism, post-fault state) surfaces as a SnapshotError naming the
// section instead of silently continuing a wrong run.
//
// Layout (all integers little-endian):
//
//   magic "HTSNAP\0\0" | u32 version | u32 section_count
//   section*: u32 name_len | name bytes | u64 payload_len | payload
//             | u64 fnv1a64(payload)
//   u64 fnv1a64(everything before this field)
//
// The payload encoding is typed-but-simple: writers emit u8/u32/u64/
// double/string/u64-vector records; readers must consume them in the
// same order (a mismatch throws). This is a state image, not a general
// serialization framework — every field is written by the component that
// owns it and verified on restore.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace ht::sim {

/// Raised on any malformed, truncated, checksum-failing, or diverging
/// snapshot. `section` names the offending section when known.
class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(std::string section, const std::string& what)
      : std::runtime_error(section.empty() ? what : section + ": " + what),
        section_(std::move(section)) {}
  const std::string& section() const { return section_; }

 private:
  std::string section_;
};

/// FNV-1a over a byte range — the checksum used throughout the format.
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

class SnapshotWriter {
 public:
  static constexpr std::uint32_t kVersion = 1;

  /// Open a named section; every value written lands in it until the next
  /// begin_section or finish(). Names must be unique within a snapshot.
  void begin_section(const std::string& name);

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);  ///< bit-exact (bit_cast through u64)
  void str(const std::string& s);
  void u64_vec(const std::vector<std::uint64_t>& v);
  void u64_map(const std::map<std::uint64_t, std::uint64_t>& m);

  /// Seal the snapshot: closes the open section, writes header + per-
  /// section checksums + the file checksum, and returns the bytes.
  std::vector<std::uint8_t> finish();

  /// FNV-1a over the serialized state written so far (sections in order,
  /// names included) — the digest stored in snapshot metadata and used by
  /// tests as a one-number state fingerprint.
  std::uint64_t digest() const;

  /// Section names in write order with their payload bytes (valid after
  /// all writes; used by the attestation path for byte-compare).
  const std::vector<std::pair<std::string, std::vector<std::uint8_t>>>& sections() const {
    return sections_;
  }

 private:
  std::vector<std::uint8_t>& payload();
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> sections_;
};

class SnapshotReader {
 public:
  /// Parses and fully validates the container: magic, version, bounds,
  /// every section checksum, and the file checksum. Throws SnapshotError.
  explicit SnapshotReader(std::vector<std::uint8_t> data);

  std::uint32_t version() const { return version_; }
  bool has_section(const std::string& name) const;
  std::vector<std::string> section_names() const;
  const std::vector<std::uint8_t>& section_payload(const std::string& name) const;

  /// Position the typed cursor at the start of `name` (throws if absent).
  void open_section(const std::string& name);

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  std::vector<std::uint64_t> u64_vec();
  std::map<std::uint64_t, std::uint64_t> u64_map();

 private:
  void need(std::size_t n) const;

  std::vector<std::uint8_t> data_;
  std::uint32_t version_ = 0;
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> sections_;
  std::map<std::string, std::size_t> index_;
  // typed cursor
  const std::vector<std::uint8_t>* cur_ = nullptr;
  std::size_t pos_ = 0;
  std::string cur_name_;
};

/// Byte-compare every section of `expected` against the same-named section
/// re-serialized into `actual` (write order must match). Throws
/// SnapshotError naming the first diverging or missing section, with the
/// first differing byte offset — the restore-attestation primitive.
void attest_sections(const SnapshotReader& expected, const SnapshotWriter& actual);

}  // namespace ht::sim
