#include "core/cluster.hpp"

#include <stdexcept>
#include <string>

#include "sim/snapshot.hpp"

namespace ht {

TesterCluster::TesterCluster(ClusterConfig cfg) : group_(cfg.shards, cfg.seed) {}

HyperTester& TesterCluster::add_tester(TesterConfig cfg, std::size_t shard) {
  if (shard >= group_.size()) {
    throw std::out_of_range("TesterCluster::add_tester: shard index out of range");
  }
  // Construction allocates on the calling thread; bind the target shard's
  // pool so anything created here is already shard-local.
  net::PoolBinding bind(&group_.shard(shard).pool());
  testers_.push_back(std::make_unique<HyperTester>(cfg, group_.shard(shard)));
  placement_.push_back(shard);
  return *testers_.back();
}

telemetry::Report TesterCluster::telemetry_report() const {
  std::vector<telemetry::RegistrySection> sections;
  sections.reserve(testers_.size());
  for (std::size_t i = 0; i < testers_.size(); ++i) {
    sections.push_back({&testers_[i]->metrics(),
                        {{"tester", "t" + std::to_string(i)}}});
  }
  return telemetry::make_report(sections);
}

void TesterCluster::write_state(sim::SnapshotWriter& w) {
  group_.write_state(w);
  for (std::size_t i = 0; i < testers_.size(); ++i) {
    testers_[i]->write_state(w, "t" + std::to_string(i));
  }
}

std::uint64_t TesterCluster::state_digest() {
  sim::SnapshotWriter w;
  write_state(w);
  return w.digest();
}

std::vector<sim::AllocCacheReport> TesterCluster::alloc_cache_reports() const {
  const sim::EventQueue::SlabStats slab = group_.aggregate_slab_stats();
  const net::PacketPool::Stats pool = group_.aggregate_pool_stats();
  return {{"packet-pool", pool.hits, pool.misses, pool.high_water},
          {"event-slab", slab.hits, slab.misses, slab.high_water}};
}

}  // namespace ht
