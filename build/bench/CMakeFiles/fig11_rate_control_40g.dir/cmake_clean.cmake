file(REMOVE_RECURSE
  "CMakeFiles/fig11_rate_control_40g.dir/fig11_rate_control_40g.cpp.o"
  "CMakeFiles/fig11_rate_control_40g.dir/fig11_rate_control_40g.cpp.o.d"
  "fig11_rate_control_40g"
  "fig11_rate_control_40g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_rate_control_40g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
