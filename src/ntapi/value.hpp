// NTAPI value types (Table 2): constant, array, range array, random array.
//
// A `set` primitive assigns one of these to a field. Constants are burned
// into the template packet by the switch CPU; the other three compile to
// editor programs in the egress pipeline (§5.1).
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

namespace ht::ntapi {

struct Constant {
  std::uint64_t value = 0;
};

struct ValueArray {
  std::vector<std::uint64_t> values;
};

/// range(start, end, step): an inclusive arithmetic progression.
struct RangeArray {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  std::uint64_t step = 1;
  std::uint64_t size() const { return step == 0 ? 0 : (end - start) / step + 1; }
};

/// random(ALG, P, n): values drawn from a distribution, realized on the
/// data plane via inverse-transform tables.
struct RandomArray {
  enum class Dist { kUniform, kNormal, kExponential };
  Dist dist = Dist::kUniform;
  double p1 = 0;  ///< uniform: lo / normal: mean / exponential: mean
  double p2 = 0;  ///< uniform: hi / normal: stddev / exponential: unused
  unsigned rng_bits = 16;
  std::size_t buckets = 256;
};

class Value {
 public:
  Value() : v_(Constant{}) {}
  Value(Constant c) : v_(c) {}
  Value(ValueArray a) : v_(std::move(a)) {}
  Value(RangeArray r) : v_(r) {}
  Value(RandomArray r) : v_(r) {}
  /// Implicit from integers: `set(f, 80)` reads like the paper's examples.
  template <typename T>
    requires std::is_integral_v<T>
  Value(T c) : v_(Constant{static_cast<std::uint64_t>(c)}) {}

  static Value constant(std::uint64_t v) { return Value(Constant{v}); }
  static Value array(std::vector<std::uint64_t> vs) { return Value(ValueArray{std::move(vs)}); }
  static Value range(std::uint64_t start, std::uint64_t end, std::uint64_t step = 1) {
    return Value(RangeArray{start, end, step});
  }
  static Value random_uniform(std::uint64_t lo, std::uint64_t hi) {
    return Value(RandomArray{RandomArray::Dist::kUniform, static_cast<double>(lo),
                             static_cast<double>(hi), 16, 256});
  }
  static Value random_normal(double mean, double stddev) {
    return Value(RandomArray{RandomArray::Dist::kNormal, mean, stddev, 16, 256});
  }
  static Value random_exponential(double mean) {
    return Value(RandomArray{RandomArray::Dist::kExponential, mean, 0, 16, 256});
  }

  bool is_constant() const { return std::holds_alternative<Constant>(v_); }
  bool is_random() const { return std::holds_alternative<RandomArray>(v_); }
  const std::variant<Constant, ValueArray, RangeArray, RandomArray>& get() const { return v_; }

  /// Number of elements in the packet stream this value defines (1 for
  /// constants; random arrays count as 1 — each packet draws fresh).
  std::uint64_t stream_length() const;

  /// Smallest and largest value this source can emit.
  std::uint64_t min_value() const;
  std::uint64_t max_value() const;

  /// The initial value placed into the template packet by the switch CPU.
  std::uint64_t initial_value() const;

  /// Enumerate the value support, capped at `limit` entries. Random arrays
  /// enumerate their inverse-transform bucket values (the exact on-wire
  /// support). Returns false when the support exceeds `limit`.
  bool enumerate(std::vector<std::uint64_t>& out, std::size_t limit) const;

  std::string to_string() const;

 private:
  std::variant<Constant, ValueArray, RangeArray, RandomArray> v_;
};

}  // namespace ht::ntapi
