#include "ntapi/value.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "htps/inverse_transform.hpp"

namespace ht::ntapi {

namespace {

htps::InverseTransformTable build_itt(const RandomArray& r) {
  switch (r.dist) {
    case RandomArray::Dist::kUniform:
      return htps::InverseTransformTable::uniform(static_cast<std::uint64_t>(r.p1),
                                                  static_cast<std::uint64_t>(r.p2), r.buckets,
                                                  r.rng_bits);
    case RandomArray::Dist::kNormal:
      return htps::InverseTransformTable::normal(r.p1, r.p2, r.buckets, r.rng_bits);
    case RandomArray::Dist::kExponential:
      return htps::InverseTransformTable::exponential(r.p1, r.buckets, r.rng_bits);
  }
  return {};
}

}  // namespace

std::uint64_t Value::stream_length() const {
  return std::visit(
      [](const auto& v) -> std::uint64_t {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, Constant>) {
          return 1;
        } else if constexpr (std::is_same_v<T, ValueArray>) {
          return v.values.size();
        } else if constexpr (std::is_same_v<T, RangeArray>) {
          return v.size();
        } else {
          return 1;  // random: each packet draws independently
        }
      },
      v_);
}

std::uint64_t Value::min_value() const {
  return std::visit(
      [](const auto& v) -> std::uint64_t {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, Constant>) {
          return v.value;
        } else if constexpr (std::is_same_v<T, ValueArray>) {
          return v.values.empty() ? 0 : *std::min_element(v.values.begin(), v.values.end());
        } else if constexpr (std::is_same_v<T, RangeArray>) {
          return v.start;
        } else {
          // Analytic lower bound (validation runs before the table can be
          // built, so invalid parameters must not throw here).
          switch (v.dist) {
            case RandomArray::Dist::kUniform:
              return static_cast<std::uint64_t>(std::max(0.0, std::min(v.p1, v.p2)));
            case RandomArray::Dist::kNormal:
              return static_cast<std::uint64_t>(std::max(0.0, v.p1 - 6.0 * std::abs(v.p2)));
            case RandomArray::Dist::kExponential:
              return 0;
          }
          return 0;
        }
      },
      v_);
}

std::uint64_t Value::max_value() const {
  return std::visit(
      [](const auto& v) -> std::uint64_t {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, Constant>) {
          return v.value;
        } else if constexpr (std::is_same_v<T, ValueArray>) {
          return v.values.empty() ? 0 : *std::max_element(v.values.begin(), v.values.end());
        } else if constexpr (std::is_same_v<T, RangeArray>) {
          return v.size() == 0 ? v.start : v.start + (v.size() - 1) * v.step;
        } else {
          switch (v.dist) {
            case RandomArray::Dist::kUniform:
              return static_cast<std::uint64_t>(std::max(0.0, std::max(v.p1, v.p2)));
            case RandomArray::Dist::kNormal:
              return static_cast<std::uint64_t>(std::max(0.0, v.p1 + 6.0 * std::abs(v.p2)));
            case RandomArray::Dist::kExponential:
              // quantile at the clamp limit: -mean*log(1e-9) ~ 20.7*mean
              return static_cast<std::uint64_t>(std::max(0.0, v.p1 * 21.0));
          }
          return 0;
        }
      },
      v_);
}

std::uint64_t Value::initial_value() const {
  return std::visit(
      [](const auto& v) -> std::uint64_t {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, Constant>) {
          return v.value;
        } else if constexpr (std::is_same_v<T, ValueArray>) {
          return v.values.empty() ? 0 : v.values.front();
        } else if constexpr (std::is_same_v<T, RangeArray>) {
          return v.start;
        } else {
          return 0;
        }
      },
      v_);
}

bool Value::enumerate(std::vector<std::uint64_t>& out, std::size_t limit) const {
  return std::visit(
      [&out, limit](const auto& v) -> bool {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, Constant>) {
          out.push_back(v.value);
          return true;
        } else if constexpr (std::is_same_v<T, ValueArray>) {
          if (v.values.size() > limit) return false;
          out.insert(out.end(), v.values.begin(), v.values.end());
          return true;
        } else if constexpr (std::is_same_v<T, RangeArray>) {
          if (v.size() > limit) return false;
          for (std::uint64_t x = v.start;; x += v.step) {
            out.push_back(x);
            if (v.step == 0 || x + v.step > v.end) break;
          }
          return true;
        } else {
          // Random values land exactly on the inverse-transform bucket
          // values — the on-wire support is enumerable.
          const auto itt = build_itt(v);
          std::set<std::uint64_t> support;
          for (const auto& b : itt.buckets()) support.insert(b.value);
          if (support.size() > limit) return false;
          out.insert(out.end(), support.begin(), support.end());
          return true;
        }
      },
      v_);
}

std::string Value::to_string() const {
  return std::visit(
      [](const auto& v) -> std::string {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, Constant>) {
          return std::to_string(v.value);
        } else if constexpr (std::is_same_v<T, ValueArray>) {
          std::string s = "[";
          for (std::size_t i = 0; i < v.values.size() && i < 4; ++i) {
            if (i) s += ", ";
            s += std::to_string(v.values[i]);
          }
          if (v.values.size() > 4) s += ", ...";
          return s + "]";
        } else if constexpr (std::is_same_v<T, RangeArray>) {
          return "range(" + std::to_string(v.start) + ", " + std::to_string(v.end) + ", " +
                 std::to_string(v.step) + ")";
        } else {
          const char* names[] = {"uniform", "normal", "exponential"};
          return std::string("random(") + names[static_cast<int>(v.dist)] + ", " +
                 std::to_string(v.p1) + ", " + std::to_string(v.p2) + ")";
        }
      },
      v_);
}

}  // namespace ht::ntapi
