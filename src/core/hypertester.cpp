#include "core/hypertester.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/packet_pool.hpp"
#include "sim/snapshot.hpp"
#include "telemetry/export.hpp"

namespace ht {

HyperTester::HyperTester(TesterConfig cfg)
    : owned_group_(std::make_unique<sim::ShardGroup>(cfg.shards == 0 ? 1 : cfg.shards,
                                                     cfg.seed)),
      home_(&owned_group_->shard(0)),
      ev_(home_->ev()),
      asic_(ev_, cfg.asic),
      controller_(asic_),
      cfg_fastpath_(cfg.fastpath) {
  auto& m = asic_.metrics();
  controller_.register_metrics(m);
  // Event-slab instrumentation joins the registry as mirrors — but only in
  // pure legacy mode (a standalone tester on a 1-shard group). With more
  // shards the slab numbers depend on how events split across queues, and
  // mirroring them would break the byte-identical-exports contract across
  // shard counts (DESIGN.md §13); the packet pool is excluded for the
  // analogous reason (its legacy incarnation was process-global, so its
  // numbers depended on how many testers ran before this one). Both stay
  // reachable via alloc_cache_reports().
  if (owned_group_->size() == 1) {
    m.mirror_counter("ht_sim_event_slab_hits_total",
                     [this] { return ev_.slab_stats().hits; },
                     {.help = "event nodes served from the slab freelist"});
    m.mirror_counter("ht_sim_event_slab_misses_total",
                     [this] { return ev_.slab_stats().misses; },
                     {.help = "event nodes carved fresh from a chunk"});
    m.mirror_counter("ht_sim_event_heap_closures_total",
                     [this] { return ev_.slab_stats().heap_closures; },
                     {.help = "event callables too big for inline storage"});
    m.mirror_gauge("ht_sim_event_slab_high_water",
                   [this] { return static_cast<std::int64_t>(ev_.slab_stats().high_water); },
                   {.help = "max events simultaneously pending"});
  }
  register_lifecycle_metrics();
}

HyperTester::HyperTester(TesterConfig cfg, sim::Shard& shard)
    : home_(&shard),
      ev_(shard.ev()),
      asic_(ev_, cfg.asic),
      controller_(asic_),
      cfg_fastpath_(cfg.fastpath) {
  // No slab mirrors for placed testers: see the standalone ctor.
  controller_.register_metrics(asic_.metrics());
  register_lifecycle_metrics();
}

void HyperTester::register_lifecycle_metrics() {
  auto& m = asic_.metrics();
  m.mirror_counter("ht_run_retries_total", [this] { return run_retries_; },
                   {.help = "stalled run slices retried with backoff"});
  m.mirror_counter("ht_run_failures_total", [this] { return run_failures_; },
                   {.help = "supervised runs that gave up (FailureReport emitted)"});
  m.mirror_counter("ht_crash_events_total", [this] { return crash_events_; },
                   {.help = "process-level faults applied to this tester"});
  m.mirror_gauge("ht_tester_crashed",
                 [this] { return static_cast<std::int64_t>(crashed_ ? 1 : 0); },
                 {.help = "1 while the tester is crashed (all ports admin-down)"});
}

void HyperTester::run_for(sim::TimeNs duration) {
  const sim::TimeNs start = ev_.now();
  home_->group().run_until(start + duration);
  if constexpr (telemetry::kEnabled) {
    if (asic_.trace().enabled()) {
      asic_.trace().complete("run_for", start, ev_.now() - start,
                             telemetry::TraceRecorder::kTrackTask);
    }
  }
}

std::vector<sim::AllocCacheReport> HyperTester::alloc_cache_reports() const {
  // Whole-engine view: slab and packet-pool stats summed across every
  // shard of the driving group (one shard = the legacy single numbers).
  const sim::ShardGroup& g = home_->group();
  const sim::EventQueue::SlabStats slab = g.aggregate_slab_stats();
  const net::PacketPool::Stats pool = g.aggregate_pool_stats();
  return {{"packet-pool", pool.hits, pool.misses, pool.high_water},
          {"event-slab", slab.hits, slab.misses, slab.high_water}};
}

void HyperTester::load(const ntapi::Task& task) {
  if (compiled_) throw std::logic_error("HyperTester: a task is already loaded");
  // Everything load() allocates — template packets above all — must live
  // in the home shard's pool so later releases on the shard's worker
  // thread stay shard-local.
  net::PoolBinding bind(&home_->pool());
  ntapi::Compiler compiler(asic_.config());
  compiled_ = compiler.compile(task);
  if constexpr (telemetry::kEnabled) {
    compiled_->annotate_trace(asic_.trace(), ev_.now());
  }

  sender_ = std::make_unique<htps::Sender>(asic_);
  receiver_ = std::make_unique<htpr::Receiver>(asic_);

  // Trigger FIFOs for stateless connections: create them first so both
  // sides can be wired.
  std::map<std::size_t, stateless::TriggerFifo*> fifo_of_trigger;
  std::map<std::size_t, std::vector<stateless::TriggerFifo*>> fifos_of_query;
  for (const auto& wiring : compiled_->fifos) {
    fifos_.push_back(std::make_unique<stateless::TriggerFifo>(
        asic_.registers(), "trigfifo." + std::to_string(wiring.trigger_index), wiring.lanes));
    fifo_of_trigger[wiring.trigger_index] = fifos_.back().get();
    fifos_of_query[wiring.query_index].push_back(fifos_.back().get());
  }
  for (const auto& f : fifos_) {
    const stateless::TriggerFifo* tf = f.get();
    asic_.metrics().mirror_counter(
        "ht_regfifo_overflows_total", [tf] { return tf->fifo().overflows(); },
        {.labels = {{"fifo", tf->fifo().name()}},
         .help = "trigger records lost to a full register FIFO",
         .drop_source = tf->fifo().name() + ".overflows"});
  }

  // HTPS: install templates (editor EditOps already reference lane
  // indexes computed by the compiler).
  for (std::size_t t = 0; t < compiled_->templates.size(); ++t) {
    htps::TemplateConfig cfg = compiled_->templates[t];
    const auto it = fifo_of_trigger.find(t);
    if (it != fifo_of_trigger.end()) cfg.trigger_fifo = &it->second->fifo();
    sender_->add_template(std::move(cfg));
  }
  sender_->install();

  // HTPR: install queries; attach trigger extraction where wired. When the
  // chaos profile flips bits on the wire, received queries arm checksum
  // re-verification so corruption lands in a per-query counter instead of
  // the aggregate.
  const bool chaos_corrupts =
      compiled_->chaos && compiled_->chaos->config.corrupt.rate > 0.0;
  for (std::size_t q = 0; q < compiled_->queries.size(); ++q) {
    htpr::QueryConfig cfg = compiled_->queries[q].config;
    if (chaos_corrupts && cfg.source == htpr::QueryConfig::Source::kReceived) {
      cfg.integrity.verify_checksums = true;
    }
    const auto it = fifos_of_query.find(q);
    if (it != fifos_of_query.end()) {
      for (auto* fifo : it->second) cfg.triggers.push_back(fifo->extract_spec());
    }
    receiver_->add_query(std::move(cfg));
  }
  receiver_->install();

  // Exact-key-matching entries + CPU-side eviction collection.
  for (std::size_t q = 0; q < compiled_->queries.size(); ++q) {
    const auto& cq = compiled_->queries[q];
    if (auto* store = receiver_->store(q)) {
      store->install_exact_entries(cq.exact_keys);
      const std::uint32_t type = cq.config.store.eviction_digest_type;
      controller_.subscribe(type, [this, type](const rmt::DigestMessage& msg) {
        if (msg.values.size() >= 2) evicted_[type][msg.values[0]] += msg.values[1];
      });
    }
  }

  // Feasibility: the program must fit the physical stages (§6.1).
  if (!asic_.ingress().place() || !asic_.egress().place()) {
    throw std::runtime_error(
        "task rejected: pipeline program does not fit the switching ASIC stages");
  }

  // Per-table occupancy/hit/miss metrics exist only after placement
  // assigned stages.
  asic_.ingress().register_metrics(asic_.metrics());
  asic_.egress().register_metrics(asic_.metrics());

  // Task-compiled fast path: specialize the per-packet walk per template
  // using the compiler's fusion plan. Templates the plan or binder could
  // not prove safe stay on the interpreted path (HT205 names why).
  if (cfg_fastpath_) {
    fastpath_ = std::make_unique<rmt::fastpath::Engine>();
    fastpath_->bind(asic_, *sender_, *receiver_, compiled_->fused);
    asic_.set_fastpath(fastpath_.get());
  }
}

void HyperTester::start() {
  if (!sender_) throw std::logic_error("HyperTester: no task loaded");
  net::PoolBinding bind(&home_->pool());
  apply_chaos();
  sender_->start();
}

void HyperTester::apply_chaos() {
  if (!chaos_links_.empty()) return;  // already attached
  if (!compiled_ || !compiled_->chaos || !compiled_->chaos->config.any()) return;
  const ntapi::ChaosSpec& spec = *compiled_->chaos;
  std::vector<std::uint16_t> ports = spec.ports;
  if (ports.empty()) {
    for (std::size_t p = 0; p < asic_.port_count(); ++p) {
      const auto pid = static_cast<std::uint16_t>(p);
      if (asic_.port(pid).peer() != nullptr) ports.push_back(pid);
    }
  }
  // One injector per direction, seeded from the profile seed so the whole
  // chaos run reproduces from a single number.
  const auto derived = [&spec](std::uint16_t port, unsigned dir) {
    return spec.config.seed ^ (0x9e3779b97f4a7c15ULL * (2ULL * port + dir + 1));
  };
  for (const std::uint16_t p : ports) {
    sim::Port& tx = asic_.port(p);
    sim::FaultConfig cfg = spec.config;
    cfg.seed = derived(p, 0);
    chaos_links_.push_back(
        {"port" + std::to_string(p) + ".tx", std::make_unique<sim::FaultInjector>(ev_, cfg)});
    chaos_links_.back().injector->attach(tx);
    if (sim::Port* peer = tx.peer(); peer != nullptr && peer != &tx) {
      cfg.seed = derived(p, 1);
      chaos_links_.push_back(
          {"port" + std::to_string(p) + ".rx", std::make_unique<sim::FaultInjector>(ev_, cfg)});
      chaos_links_.back().injector->attach(*peer);
    }
  }

  // Per-link fault stats join the registry: the drop-flavoured ones under
  // their legacy "<link>.fault_<kind>" audit source names, plus the
  // aggregate offered/delivered pair the throughput benches consume
  // instead of re-summing injector stats by hand.
  auto& m = asic_.metrics();
  for (const auto& link : chaos_links_) {
    const sim::FaultInjector* inj = link.injector.get();
    const std::vector<telemetry::Label> labels = {{"link", link.name}};
    m.mirror_counter("ht_chaos_lost_total", [inj] { return inj->stats().lost; },
                     {.labels = labels, .help = "Bernoulli + Gilbert-Elliott losses",
                      .drop_source = link.name + ".fault_lost"});
    m.mirror_counter("ht_chaos_flap_drops_total", [inj] { return inj->stats().flap_drops; },
                     {.labels = labels, .help = "packets dropped while the link was down",
                      .drop_source = link.name + ".fault_flap_drops"});
    m.mirror_counter("ht_chaos_corrupted_total", [inj] { return inj->stats().corrupted; },
                     {.labels = labels, .help = "packets bit-flipped on the wire",
                      .drop_source = link.name + ".fault_corrupted"});
    m.mirror_counter("ht_chaos_duplicated_total", [inj] { return inj->stats().duplicated; },
                     {.labels = labels, .help = "packets duplicated on the wire",
                      .drop_source = link.name + ".fault_duplicated"});
    m.mirror_counter("ht_chaos_reordered_total", [inj] { return inj->stats().reordered; },
                     {.labels = labels, .help = "packets delivered out of order",
                      .drop_source = link.name + ".fault_reordered"});
  }
  m.mirror_counter("ht_chaos_offered_total",
                   [this] {
                     std::uint64_t total = 0;
                     for (const auto& link : chaos_links_) total += link.injector->stats().offered;
                     return total;
                   },
                   {.help = "packets entering any chaos injector"});
  m.mirror_counter("ht_chaos_delivered_total",
                   [this] {
                     std::uint64_t total = 0;
                     for (const auto& link : chaos_links_)
                       total += link.injector->stats().delivered;
                     return total;
                   },
                   {.help = "packets the chaos injectors handed to their destination"});
}

std::vector<sim::DropCounter> HyperTester::drop_report() const {
  // Everything with a drop_source registered on the device registry, in
  // registration order: ASIC + ports (construction), controller (ctor),
  // HTPR integrity gates + FIFOs (load), chaos links (start).
  std::vector<sim::DropCounter> out;
  for (auto& [source, count] : asic_.metrics().drop_counters()) out.push_back({source, count});
  return out;
}

std::optional<sim::FailureReport> HyperTester::run_with_retry(
    sim::TimeNs duration, sim::RetryPolicy policy, std::function<std::uint64_t()> progress) {
  if (!progress) {
    // Recirculating templates keep the ASIC busy even when every link is
    // down, so "the pipeline moved" is not progress. Progress is packets
    // crossing the wire: chaos-link deliveries plus front-panel receives
    // (the latter covers runs without a chaos profile).
    progress = [this] {
      std::uint64_t total = 0;
      for (const auto& link : chaos_links_) total += link.injector->stats().delivered;
      for (std::size_t p = 0; p < asic_.port_count(); ++p) {
        total += asic_.port(static_cast<std::uint16_t>(p)).rx_packets();
      }
      return total;
    };
  }
  const sim::TimeNs deadline = ev_.now() + duration;
  const sim::TimeNs first_attempt = ev_.now();
  auto counters_before = drop_report();
  unsigned retry = 0;
  unsigned attempts = 1;
  std::uint64_t last = progress();
  while (ev_.now() < deadline) {
    const sim::TimeNs slice = std::min<sim::TimeNs>(policy.timeout_ns, deadline - ev_.now());
    home_->group().run_until(ev_.now() + slice);
    const std::uint64_t current = progress();
    if (current != last) {
      last = current;
      retry = 0;
      continue;
    }
    if (retry >= policy.max_retries) {
      sim::FailureReport report;
      report.component = "HyperTester";
      report.what = "task '" + compiled_->name +
                    "' made no progress (link down or peer unresponsive)";
      report.first_attempt_ns = first_attempt;
      report.gave_up_ns = ev_.now();
      report.attempts = attempts;
      report.counters_before = std::move(counters_before);
      report.counters_after = drop_report();
      ++run_failures_;
      failure_log_.push_back(report);
      return report;
    }
    ++retry;
    ++attempts;
    ++run_retries_;
    // Backoff still advances sim time: a flap window can end while we
    // wait, in which case the next slice sees progress and resets retry.
    const sim::TimeNs wait =
        std::min<sim::TimeNs>(policy.backoff(retry - 1), deadline - ev_.now());
    if (wait > 0) home_->group().run_until(ev_.now() + wait);
    const std::uint64_t after_backoff = progress();
    if (after_backoff != last) {
      last = after_backoff;
      retry = 0;
    }
  }
  return std::nullopt;
}

std::uint64_t HyperTester::query_total(ntapi::QueryHandle q) const {
  return receiver_->keyless_total(q.index);
}

std::uint64_t HyperTester::query_matched(ntapi::QueryHandle q) const {
  return receiver_->matched(q.index);
}

std::uint64_t HyperTester::query_distinct(ntapi::QueryHandle q) const {
  const auto* store = receiver_->store(q.index);
  if (store == nullptr) throw std::logic_error("query_distinct on a keyless query");
  const auto type = compiled_->queries[q.index].config.store.eviction_digest_type;
  const auto it = evicted_.find(type);
  return store->distinct_count(it == evicted_.end() ? empty_evictions_ : it->second);
}

std::uint64_t HyperTester::query_value(ntapi::QueryHandle q,
                                       const std::vector<std::uint64_t>& key) const {
  const auto* store = receiver_->store(q.index);
  if (store == nullptr) throw std::logic_error("query_value on a keyless query");
  const auto type = compiled_->queries[q.index].config.store.eviction_digest_type;
  const auto it = evicted_.find(type);
  return store->total_for_key(key, it == evicted_.end() ? empty_evictions_ : it->second);
}

// --- run lifecycle: crash faults + snapshots (DESIGN.md §14) ---------------

void HyperTester::set_ports_admin(bool up, bool include_recirc) {
  for (std::size_t p = 0; p < asic_.port_count(); ++p) {
    asic_.port(static_cast<std::uint16_t>(p)).set_admin_up(up);
  }
  // On a crash, recirculation goes down too: a dead tester must stop its
  // own packet loops, not just its front-panel traffic. A stall keeps the
  // loops alive — they are how recirculation-driven templates resume.
  if (include_recirc) asic_.set_recirc_admin(up);
}

void HyperTester::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++crash_events_;
  set_ports_admin(false);
}

void HyperTester::reboot_switch() {
  crash();
  // Volatile-state loss: every register array — HTPS schedules, HTPR
  // aggregates, trigger FIFOs — reads zero afterwards, like SRAM after a
  // power cycle. CPU DRAM (evicted_) survives; it lives off-switch.
  auto& regs = asic_.registers();
  for (const auto& name : regs.names()) regs.get(name).fill(0);
}

void HyperTester::partition_controller(sim::TimeNs duration) {
  ++crash_events_;
  controller_.set_rpc_loss(1.0, 0xdeadu);
  ev_.schedule_in(duration, [this] { controller_.set_rpc_loss(0.0, 0xdeadu); });
}

void HyperTester::stall(sim::TimeNs duration) {
  ++crash_events_;
  set_ports_admin(false, /*include_recirc=*/false);
  ev_.schedule_in(duration, [this] {
    if (!crashed_) set_ports_admin(true, /*include_recirc=*/false);
  });
}

void HyperTester::apply_crash_plan(const sim::CrashPlan& plan, std::size_t self_index) {
  for (const sim::CrashEvent& e : plan.events) {
    if (e.tester != self_index) continue;
    const sim::TimeNs d = e.duration_ns;
    switch (e.kind) {
      case sim::CrashKind::kTesterCrash:
        ev_.schedule_at(e.at_ns, [this] { crash(); });
        break;
      case sim::CrashKind::kSwitchReboot:
        ev_.schedule_at(e.at_ns, [this] { reboot_switch(); });
        break;
      case sim::CrashKind::kControllerPartition:
        ev_.schedule_at(e.at_ns, [this, d] { partition_controller(d); });
        break;
      case sim::CrashKind::kShardStall:
        ev_.schedule_at(e.at_ns, [this, d] { stall(d); });
        break;
    }
  }
}

void HyperTester::write_state(sim::SnapshotWriter& w, const std::string& label) {
  const rmt::AsicConfig& cfg = asic_.config();
  w.begin_section(label + ".meta");
  w.str(compiled_ ? compiled_->name : "");
  w.u64(cfg.num_ports);
  w.u64(cfg.seed);
  w.u8(cfg_fastpath_ ? 1 : 0);
  w.u8(crashed_ ? 1 : 0);

  // Every register array, cell-exact, in sorted name order: this one
  // section covers all HTPS schedules, HTPR aggregates, FIFO contents, and
  // counter-store SRAM — registers are the only mutable data-plane state.
  w.begin_section(label + ".registers");
  auto& regs = asic_.registers();
  const std::vector<std::string> names = regs.names();
  w.u64(names.size());
  for (const std::string& name : names) {
    const rmt::RegisterArray& a = regs.get(name);
    w.str(name);
    w.u32(a.bit_width());
    w.u64(a.salu_executions());
    std::vector<std::uint64_t> cells(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) cells[i] = a.read(i);
    w.u64_vec(cells);
  }

  w.begin_section(label + ".ports");
  const auto write_port = [&w](sim::Port& p) {
    w.u64(p.tx_packets());
    w.u64(p.tx_bytes());
    w.u64(p.tx_line_bytes());
    w.u64(p.tx_completed_line_bytes());
    w.u64(p.rx_packets());
    w.u64(p.rx_bytes());
    w.u64(p.dropped_no_peer());
    w.u64(p.dropped_queue_full());
    w.u64(p.rx_fcs_drops());
    w.u64(p.dropped_admin_down());
    w.f64(p.busy_until());  // MAC credit clock, bit-exact
    w.u8(p.admin_up() ? 1 : 0);
  };
  w.u64(asic_.port_count());
  for (std::size_t p = 0; p < asic_.port_count(); ++p) {
    write_port(asic_.port(static_cast<std::uint16_t>(p)));
  }
  // Recirculation channels are not Ports; capture their serializer clocks
  // and loop counts (plus the admin gate) so a restored run resumes every
  // in-flight loop at the exact same phase.
  w.u64(asic_.recirc_channel_count());
  for (std::size_t c = 0; c < asic_.recirc_channel_count(); ++c) {
    w.f64(asic_.recirc_busy_until(c));
    w.u64(asic_.recirc_loops(c));
  }
  w.u8(asic_.recirc_admin_up() ? 1 : 0);
  w.u64(asic_.recirc_admin_drops());

  w.begin_section(label + ".asic");
  w.u64(asic_.ingress_packets());
  w.u64(asic_.egress_packets());
  w.u64(asic_.dropped_packets());
  w.u64(asic_.recirculations());
  w.u64(asic_.replicas_created());
  w.u64(asic_.injected_drops());

  w.begin_section(label + ".htps");
  w.u64(sender_ ? sender_->template_count() : 0);
  if (sender_) {
    for (std::size_t t = 0; t < sender_->template_count(); ++t) {
      const auto tid = static_cast<std::uint32_t>(t);
      w.u64(sender_->fires(tid));
      w.u8(sender_->done(tid) ? 1 : 0);
    }
  }

  w.begin_section(label + ".htpr");
  w.u64(receiver_ ? receiver_->query_count() : 0);
  if (receiver_) {
    for (std::size_t q = 0; q < receiver_->query_count(); ++q) {
      w.u64(receiver_->evaluated(q));
      w.u64(receiver_->matched(q));
      w.u64(receiver_->checksum_fails(q));
      w.u64(receiver_->out_of_window(q));
      const htpr::CounterStore* store = receiver_->store(q);
      if (store == nullptr) {
        w.u8(0);
        w.u64(receiver_->keyless_total(q));
      } else {
        w.u8(1);
        w.u64(store->updates());
        w.u64(store->exact_hits());
        w.u64(store->fifo_pushes());
        w.u64(store->cpu_evictions());
        w.u64_map(store->dump_fingerprints());
      }
    }
  }
  // CPU DRAM: evictions folded by the digest subscriptions. Survives a
  // switch reboot, so it is serialized apart from the register image.
  w.u64(evicted_.size());
  for (const auto& [type, counts] : evicted_) {
    w.u32(type);
    w.u64_map(counts);
  }

  w.begin_section(label + ".controller");
  w.u64(controller_.rpc_lost());
  w.u64(controller_.digest_count());
  w.u64_map(controller_.evicted_counters());

  // Every RNG stream owned by this tester: the ASIC's (MAC jitter, timing
  // noise) and one per chaos injector. Byte-exact stream positions are
  // what make "replay reproduces the run" more than a hope.
  w.begin_section(label + ".rng");
  w.str(asic_.rng().state_string());
  w.u64(chaos_links_.size());
  for (const auto& link : chaos_links_) {
    w.str(link.name);
    w.str(link.injector->rng_state_string());
    w.u8(link.injector->link_up() ? 1 : 0);
    w.u8(link.injector->gilbert_bad() ? 1 : 0);
    const sim::FaultStats& fs = link.injector->stats();
    w.u64(fs.offered);
    w.u64(fs.delivered);
    w.u64(fs.lost);
    w.u64(fs.reordered);
    w.u64(fs.duplicated);
    w.u64(fs.corrupted);
    w.u64(fs.flap_drops);
  }

  w.begin_section(label + ".telemetry");
  w.str(telemetry::to_prometheus(asic_.metrics()));
}

std::uint64_t HyperTester::state_digest() {
  sim::SnapshotWriter w;
  write_state(w, "t");
  return w.digest();
}

std::uint64_t HyperTester::trigger_fires(ntapi::TriggerHandle t) const {
  return sender_->fires(static_cast<std::uint32_t>(t.index));
}

bool HyperTester::trigger_done(ntapi::TriggerHandle t) const {
  return sender_->done(static_cast<std::uint32_t>(t.index));
}

}  // namespace ht
