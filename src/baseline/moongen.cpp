#include "baseline/moongen.hpp"

#include <algorithm>
#include <cmath>

#include "net/packet_builder.hpp"

namespace ht::baseline {

double MoonGenModel::throughput_pps(std::size_t pkt_bytes, std::size_t cores, std::size_t ports,
                                    double per_port_gbps) const {
  // One TX core drives one port; each lane is bounded by the core's
  // per-packet cost and the port's line rate (full wire size).
  const double line_bits = static_cast<double>(pkt_bytes + net::Packet::kWireOverhead) * 8.0;
  const double lanes = static_cast<double>(std::min(cores, ports));
  const double per_lane = std::min(per_core_pps, per_port_gbps * 1e9 / line_bits);
  return lanes * per_lane;
}

double MoonGenModel::throughput_gbps(std::size_t pkt_bytes, std::size_t cores, std::size_t ports,
                                     double per_port_gbps) const {
  const double line_bits = static_cast<double>(pkt_bytes + net::Packet::kWireOverhead) * 8.0;
  return throughput_pps(pkt_bytes, cores, ports, per_port_gbps) * line_bits / 1e9;
}

MoonGenGenerator::MoonGenGenerator(sim::EventQueue& ev, sim::Port& port, Config cfg)
    : ev_(ev), port_(port), cfg_(cfg), rng_(cfg.seed) {}

void MoonGenGenerator::start() {
  running_ = true;
  next_tx_ns_ = static_cast<double>(ev_.now());
  emit_batch();
}

void MoonGenGenerator::emit_batch() {
  if (!running_) return;
  const MoonGenModel& m = cfg_.model;
  // Effective rate: capped by what the cores can push.
  const double pps = std::min(
      cfg_.target_pps, m.throughput_pps(cfg_.pkt_bytes, cfg_.cores, 1, port_.rate_gbps()));
  const double interval = 1e9 / pps;

  if (cfg_.rate_control == RateControl::kSoftware) {
    // Software pacing: sleep to the batch deadline (coarse), then blast
    // the whole batch back-to-back.
    for (std::size_t i = 0; i < m.batch_size; ++i) {
      port_.send(net::make_packet(
          net::make_udp_packet(0x0A000001, 0x0A000002, 1000, 2000, cfg_.pkt_bytes)));
      ++emitted_;
    }
    next_tx_ns_ += interval * static_cast<double>(m.batch_size);
    const double oversleep =
        std::max(0.0, rng_.gaussian(m.sw_sleep_granularity_ns / 2.0, m.sw_jitter_sigma_ns));
    const double wake = std::max(next_tx_ns_ + oversleep, static_cast<double>(ev_.now()));
    ev_.schedule_at(static_cast<sim::TimeNs>(std::llround(wake)), [this] { emit_batch(); });
    return;
  }

  // NIC hardware rate control: per-packet pacing quantized to the NIC's
  // internal tick, plus DMA/queue arbitration jitter.
  port_.send(net::make_packet(
      net::make_udp_packet(0x0A000001, 0x0A000002, 1000, 2000, cfg_.pkt_bytes)));
  ++emitted_;
  next_tx_ns_ += interval;
  const double quantized = std::ceil(next_tx_ns_ / m.hw_tick_ns) * m.hw_tick_ns;
  const double jittered = std::max(quantized + rng_.gaussian(0.0, m.hw_jitter_sigma_ns),
                                   static_cast<double>(ev_.now()) + 1.0);
  ev_.schedule_at(static_cast<sim::TimeNs>(std::llround(jittered)), [this] { emit_batch(); });
}

double MoonGenGenerator::sw_timestamped_delay_ns(const MoonGenModel& model, double true_delay_ns,
                                                 sim::Rng& rng) {
  return std::max(
      0.0, true_delay_ns + model.sw_timestamp_overhead_ns +
               std::abs(rng.gaussian(0.0, model.sw_timestamp_sigma_ns)));
}

}  // namespace ht::baseline
