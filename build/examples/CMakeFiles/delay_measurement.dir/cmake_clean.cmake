file(REMOVE_RECURSE
  "CMakeFiles/delay_measurement.dir/delay_measurement.cpp.o"
  "CMakeFiles/delay_measurement.dir/delay_measurement.cpp.o.d"
  "delay_measurement"
  "delay_measurement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
