// Periodic pull-mode collection (§5.2 "the pull mode").
//
// Real deployments sample data-plane counters on a schedule to build time
// series (throughput over time, per-flow growth). The poller issues one
// batched read per period through the Controller's latency model and
// stores the sampled series, so reporting honestly pays the control-plane
// cost Fig 16b measures.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "switchcpu/controller.hpp"

namespace ht::switchcpu {

class PeriodicPoller {
 public:
  struct Sample {
    sim::TimeNs requested_at = 0;  ///< when the poll was issued
    sim::TimeNs delivered_at = 0;  ///< when the values arrived at the CPU
    std::vector<std::uint64_t> values;
  };

  /// Polls `reg` every `period` using the batched API. Sampling starts on
  /// start() and continues until stop() (or forever).
  PeriodicPoller(Controller& controller, std::string reg, sim::TimeNs period);

  void start();
  void stop() { running_ = false; }
  bool running() const { return running_; }

  const std::vector<Sample>& samples() const { return samples_; }
  std::size_t sample_count() const { return samples_.size(); }

  /// Per-period delta of one counter index across consecutive samples —
  /// e.g. bytes/period for a throughput time series. Empty with <2 samples.
  std::vector<double> rate_series(std::size_t index) const;

  /// Optional hook invoked as each sample lands.
  std::function<void(const Sample&)> on_sample;

 private:
  void poll();

  Controller& controller_;
  std::string reg_;
  sim::TimeNs period_;
  bool running_ = false;
  std::vector<Sample> samples_;
};

}  // namespace ht::switchcpu
