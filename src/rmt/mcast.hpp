// Multicast group table of the traffic manager.
//
// The replicator (§5.1) relies on one general switch capability: the mcast
// engine replicates a packet to every member (port, rid) of a group. For
// template packets the group contains the recirculation port (keeping the
// template in the loop) plus the test egress ports.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace ht::rmt {

struct McastMember {
  std::uint16_t port = 0;
  std::uint16_t rid = 0;  ///< replication id, visible to egress processing
};

class McastGroupTable {
 public:
  void configure(std::uint16_t group, std::vector<McastMember> members) {
    groups_[group] = std::move(members);
  }
  void remove(std::uint16_t group) { groups_.erase(group); }
  bool contains(std::uint16_t group) const { return groups_.count(group) != 0; }

  const std::vector<McastMember>& members(std::uint16_t group) const {
    const auto it = groups_.find(group);
    if (it == groups_.end()) {
      throw std::out_of_range("mcast group not configured: " + std::to_string(group));
    }
    return it->second;
  }

  std::size_t group_count() const { return groups_.size(); }

 private:
  std::unordered_map<std::uint16_t, std::vector<McastMember>> groups_;
};

}  // namespace ht::rmt
