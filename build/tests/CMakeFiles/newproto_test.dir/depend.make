# Empty dependencies file for newproto_test.
# This may be replaced when dependencies are built.
