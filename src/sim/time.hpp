// Simulated time: nanoseconds since simulation start.
#pragma once

#include <cstdint>

namespace ht::sim {

using TimeNs = std::uint64_t;

constexpr TimeNs kMicrosecond = 1'000;
constexpr TimeNs kMillisecond = 1'000'000;
constexpr TimeNs kSecond = 1'000'000'000;

constexpr TimeNs us(std::uint64_t n) { return n * kMicrosecond; }
constexpr TimeNs ms(std::uint64_t n) { return n * kMillisecond; }
constexpr TimeNs seconds(std::uint64_t n) { return n * kSecond; }

/// Serialization time of `bytes` at `rate_gbps` gigabits per second,
/// rounded to the nearest nanosecond (sub-ns precision is carried by the
/// caller where it matters, e.g. the port MAC keeps fractional credit).
constexpr double serialization_ns(std::size_t bytes, double rate_gbps) {
  return static_cast<double>(bytes) * 8.0 / rate_gbps;
}

}  // namespace ht::sim
