#include "sim/port.hpp"

#include "net/headers.hpp"
#include "sim/mailbox.hpp"

namespace ht::sim {

void Port::send(net::PacketPtr pkt) { send_at(ev_.now(), std::move(pkt)); }

void Port::send_at(TimeNs now_ns, net::PacketPtr pkt) {
  if (!admin_up_) {
    ++dropped_admin_down_;
    return;
  }
  if (peer_ == nullptr) {
    ++dropped_no_peer_;
    return;
  }
  if (tx_in_flight_ >= tx_queue_capacity_) {
    ++dropped_queue_full_;
    return;
  }
  const double now = static_cast<double>(now_ns);
  const double start = std::max(now, busy_until_);
  const double tx_time = serialization_ns(pkt->line_size(), rate_gbps_);
  busy_until_ = start + tx_time;

  ++tx_packets_;
  tx_bytes_ += pkt->size();
  tx_line_bytes_ += pkt->line_size();
  ++tx_in_flight_;

  const TimeNs start_ns = static_cast<TimeNs>(std::llround(start));
  if (on_transmit) on_transmit(*pkt, start_ns);

  // The last bit leaves at busy_until_; arrival is propagation later.
  const TimeNs arrive = static_cast<TimeNs>(std::llround(busy_until_)) + propagation_ns_;
  if constexpr (telemetry::kEnabled) {
    if (wire_latency_ != nullptr && arrive >= static_cast<TimeNs>(now)) {
      wire_latency_->record(arrive - static_cast<TimeNs>(now));
    }
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->complete("tx", start_ns, static_cast<std::uint64_t>(std::llround(tx_time)),
                       telemetry::TraceRecorder::kTrackPortBase + id_);
    }
  }
  const std::uint64_t line_bytes = pkt->line_size();
  if (remote_out_ != nullptr) {
    // Cross-shard wire: the packet leaves through the link mailbox NOW, at
    // send time, stamped with the same arrival the local path computes —
    // waiting for the serialization-complete event could be too late, as
    // the destination shard's clock may pass `arrive` within this epoch.
    // A local event still retires the TX bookkeeping at the same instant.
    remote_out_->push(std::move(pkt), arrive);
    ev_.schedule_at(arrive, [this, line_bytes] {
      --tx_in_flight_;
      tx_completed_line_bytes_ += line_bytes;
    });
    return;
  }
  Port* peer = peer_;
  ev_.schedule_at(arrive, [this, peer, line_bytes, pkt = std::move(pkt)]() mutable {
    --tx_in_flight_;
    tx_completed_line_bytes_ += line_bytes;
    if (wire_hook) {
      wire_hook(std::move(pkt), *peer);
    } else {
      peer->deliver(std::move(pkt));
    }
  });
}

void Port::deliver(net::PacketPtr pkt) {
  if (!admin_up_) {
    ++dropped_admin_down_;
    return;
  }
  if (verify_fcs_ && !net::verify_checksums(*pkt)) {
    ++rx_fcs_drops_;
    return;
  }
  ++rx_packets_;
  rx_bytes_ += pkt->size();
  pkt->meta().ingress_port = id_;
  pkt->meta().ingress_tstamp_ns = ev_.now();  // MAC hardware timestamp
  if (on_receive) on_receive(std::move(pkt));
}

double Port::tx_line_rate_gbps() const {
  if (ev_.now() == 0) return 0.0;
  return static_cast<double>(tx_completed_line_bytes_) * 8.0 / static_cast<double>(ev_.now());
}

}  // namespace ht::sim
