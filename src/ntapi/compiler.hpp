// The NTAPI compiler (§5.1 "compiling packet stream triggers to HTPS" and
// §5.2 "compiling packet stream queries to HTPR").
//
// compile() turns a Task into everything the runtime needs:
//  - one template-packet configuration per trigger (template bytes, mcast
//    ports, rate-timer settings, editor program);
//  - one query configuration per query (operator program, counter-store
//    shape, precomputed exact-match keys for false-positive freedom);
//  - the trigger-FIFO schemas wiring query-based triggers to their source
//    queries (stateless connections);
//  - the generated P4 program text (Table 5's middle column).
//
// Invalid tasks are rejected with every validation error attached
// (§6.1: "HyperTester will reject the mistaken testing tasks").
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "htps/sender.hpp"
#include "htpr/receiver.hpp"
#include "ntapi/task.hpp"
#include "ntapi/validation.hpp"
#include "rmt/fastpath/plan.hpp"

namespace ht::ntapi {

class CompileError : public std::runtime_error {
 public:
  explicit CompileError(std::vector<ValidationError> errors);
  const std::vector<ValidationError>& errors() const { return errors_; }

 private:
  static std::string format(const std::vector<ValidationError>& errors);
  std::vector<ValidationError> errors_;
};

struct CompiledQuery {
  htpr::QueryConfig config;
  /// Colliding keys to install in the exact-key-matching table.
  std::vector<std::vector<std::uint64_t>> exact_keys;
  /// False when the key space could not be enumerated (foreign traffic or
  /// space beyond the cap) — the query then runs best-effort.
  bool false_positive_free = true;
  std::size_t key_space_size = 0;
};

/// Stateless-connection wiring: trigger <- records from query.
struct FifoWiring {
  std::size_t trigger_index = 0;
  std::size_t query_index = 0;
  std::vector<net::FieldId> lanes;
};

struct CompiledTask {
  std::string name;
  std::vector<htps::TemplateConfig> templates;  ///< index = trigger handle
  std::vector<CompiledQuery> queries;           ///< index = query handle
  std::vector<FifoWiring> fifos;
  std::string p4_source;
  std::size_t p4_loc = 0;     ///< non-empty generated lines (Table 5)
  std::size_t ntapi_loc = 0;  ///< NTAPI statements (Table 5)
  std::vector<std::string> warnings;
  /// Static-analysis report over the compiled artifacts (htlint). A task
  /// returned by compile() carries warnings only; analysis errors are
  /// rejected with CompileError.
  analysis::AnalysisReport analysis;
  /// Chaos profile carried through from the task (ntapi::Task::set_chaos);
  /// applied by the runtime when the task starts.
  std::optional<ChaosSpec> chaos;
  /// Per-template fast-path fusion verdicts (rmt/fastpath/plan.hpp).
  /// Consumed by the HT205 lint pass and by HyperTester::load() when it
  /// binds the fused engine; unfusable templates run interpreted.
  rmt::fastpath::FusedPlan fused;

  /// Task-level span annotations: names the trace process after the task
  /// and drops one instant per installed trigger/query/FIFO wiring on the
  /// task track at time `now_ns`, so a Perfetto view of a run opens with
  /// the task structure at the top. Called by HyperTester::load().
  void annotate_trace(telemetry::TraceRecorder& tr, std::uint64_t now_ns) const;
};

class Compiler {
 public:
  explicit Compiler(rmt::AsicConfig asic_cfg = {}) : asic_cfg_(asic_cfg) {}

  /// Throws CompileError on validation failure or when the static
  /// analyzer finds an error (HT1xx) in the compiled artifacts.
  CompiledTask compile(const Task& task) const;

  /// Run validation + the static analyzer without throwing: validation
  /// failures come back as HT100 error diagnostics, analyzer findings
  /// verbatim. This is what `ntapi_cli lint` prints.
  analysis::AnalysisReport lint(const Task& task) const;

  /// The CPU-side template recipe for one trigger (exposed for tests and
  /// the header-space analysis).
  static htps::TemplateSpec build_template_spec(const Task& task, std::size_t trigger_index);

  /// Cap on key-space enumeration for false-positive analysis.
  std::size_t key_space_cap = 4'000'000;

 private:
  /// Lowering only (templates, queries, FIFOs, P4); assumes a valid task.
  CompiledTask lower(const Task& task) const;

  rmt::AsicConfig asic_cfg_;
};

}  // namespace ht::ntapi
