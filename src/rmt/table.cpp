#include "rmt/table.hpp"

#include <algorithm>
#include <stdexcept>

namespace ht::rmt {

KeyMatch lpm_match(std::uint64_t value, unsigned prefix_len, unsigned field_bits) {
  KeyMatch k;
  k.prefix_len = prefix_len;
  k.mask = prefix_len == 0
               ? 0
               : (net::low_mask(field_bits) & ~net::low_mask(field_bits - prefix_len));
  k.value = value & k.mask;
  return k;
}

MatchActionTable::MatchActionTable(std::string name, std::vector<MatchSpec> key,
                                   std::size_t size_hint)
    : name_(std::move(name)), key_(std::move(key)), size_hint_(size_hint) {
  all_exact_ = std::all_of(key_.begin(), key_.end(),
                           [](const MatchSpec& s) { return s.kind == MatchKind::kExact; });
}

void MatchActionTable::add_entry(TableEntry entry) {
  if (entry.keys.size() != key_.size()) {
    throw std::invalid_argument("table " + name_ + ": entry key arity mismatch");
  }
  if (entries_.size() >= size_hint_) {
    throw std::length_error("table " + name_ + ": capacity exceeded (" +
                            std::to_string(size_hint_) + ")");
  }
  if (all_exact_ && !key_.empty()) {
    const std::string packed = pack_entry_key(entry);
    if (exact_index_.count(packed) != 0) {
      throw std::invalid_argument("table " + name_ + ": duplicate exact entry");
    }
    exact_index_.emplace(packed, entries_.size());
  }
  entries_.push_back(std::move(entry));
}

void MatchActionTable::set_default(std::string action_name, ActionFn action) {
  default_entry_ = TableEntry{{}, -1, std::move(action_name), std::move(action)};
}

void MatchActionTable::clear_entries() {
  entries_.clear();
  exact_index_.clear();
}

std::string MatchActionTable::pack_exact_key(const Phv& phv) const {
  std::string out;
  out.reserve(key_.size() * 8);
  for (const MatchSpec& s : key_) {
    const std::uint64_t v = phv.get(s.field);
    for (int b = 0; b < 8; ++b) out.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
  }
  return out;
}

std::string MatchActionTable::pack_entry_key(const TableEntry& e) const {
  std::string out;
  out.reserve(key_.size() * 8);
  for (const KeyMatch& k : e.keys) {
    for (int b = 0; b < 8; ++b) out.push_back(static_cast<char>((k.value >> (8 * b)) & 0xff));
  }
  return out;
}

bool MatchActionTable::entry_matches(const TableEntry& e, const Phv& phv) const {
  for (std::size_t i = 0; i < key_.size(); ++i) {
    const std::uint64_t v = phv.get(key_[i].field);
    const KeyMatch& k = e.keys[i];
    switch (key_[i].kind) {
      case MatchKind::kExact:
        if (v != k.value) return false;
        break;
      case MatchKind::kTernary:
        if ((v & k.mask) != (k.value & k.mask)) return false;
        break;
      case MatchKind::kRange:
        if (v < k.value || v > k.high) return false;
        break;
      case MatchKind::kLpm:
        if ((v & k.mask) != k.value) return false;
        break;
    }
  }
  return true;
}

const TableEntry* MatchActionTable::lookup(const Phv& phv) const {
  if (all_exact_ && !key_.empty()) {
    const auto it = exact_index_.find(pack_exact_key(phv));
    if (it == exact_index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    return &entries_[it->second];
  }
  const auto total_prefix = [this](const TableEntry& e) {
    unsigned sum = 0;
    for (std::size_t i = 0; i < key_.size(); ++i) {
      if (key_[i].kind == MatchKind::kLpm) sum += e.keys[i].prefix_len;
    }
    return sum;
  };
  const TableEntry* best = nullptr;
  for (const TableEntry& e : entries_) {
    if (!entry_matches(e, phv)) continue;
    if (best == nullptr || e.priority > best->priority ||
        (e.priority == best->priority && total_prefix(e) > total_prefix(*best))) {
      best = &e;
    }
  }
  best != nullptr ? ++hits_ : ++misses_;
  return best;
}

bool MatchActionTable::apply(ActionContext& ctx) {
  const TableEntry* e = lookup(ctx.phv);
  if (e != nullptr) {
    if (e->action) e->action(ctx);
    return true;
  }
  if (default_entry_ && default_entry_->action) default_entry_->action(ctx);
  return false;
}

ResourceUsage MatchActionTable::estimate_resources() const {
  ResourceUsage u;
  double key_bits = 0;
  bool any_tcam = false;
  for (const MatchSpec& s : key_) {
    key_bits += net::field_width(s.field);
    any_tcam |= s.kind != MatchKind::kExact;
  }
  u.match_crossbar_bits = key_bits;
  // Entry storage: key bits + ~32 bits of action data/overhead per entry.
  const double entry_bits = key_bits + 32.0;
  const double table_kb = static_cast<double>(size_hint_) * entry_bits / 8.0 / 1024.0;
  if (any_tcam) {
    u.tcam_kb = table_kb;
  } else {
    u.sram_kb = table_kb;
    u.hash_bits = key_bits;  // exact tables hash their key for indexing
  }
  u.vliw_slots = 2.0;  // typical compiled action footprint
  return u;
}

}  // namespace ht::rmt
