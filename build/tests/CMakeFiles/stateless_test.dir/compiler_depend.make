# Empty compiler generated dependencies file for stateless_test.
# This may be replaced when dependencies are built.
