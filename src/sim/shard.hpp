// Sharded simulation engine: shard-per-worker discrete-event execution
// with conservative link-lookahead synchronization (DESIGN.md §13).
//
// A Shard is one self-contained simulation domain: its own EventQueue
// (timer wheel + event slab), its own Rng stream (splitmix64 fanout of
// the group's run seed), and its own PacketPool. Components constructed
// against a shard's queue — a whole HyperTester, a DUT endpoint — share
// NOTHING mutable with components on other shards; the only cross-shard
// edges are links (sim::Port wire paths), which hand packets over
// through per-link SPSC mailboxes (sim/mailbox.hpp).
//
// The ShardGroup runs its shards on std::thread workers in epochs of
// conservative lookahead L = min over cross-shard link directions of
// (propagation + minimum serialization time). Any packet sent during the
// epoch [T, T+L) arrives at >= T+L, so within an epoch every shard can
// execute independently; at the epoch barrier the group drains all
// mailboxes in fixed link order and schedules the deliveries on the
// destination queues. That drain order — and the per-shard (time, seq)
// order inside each queue — makes results byte-identical run-to-run AND
// across worker interleavings.
//
// Determinism contract (pinned by tests/determinism_test.cpp): for a
// fixed component placement and run seed, all observable results —
// counters, store fingerprints, replica bytes, arrival timestamps,
// Prometheus text — are byte-identical across shard counts {1, 2, 4, 8}
// and across repeated runs. The contract holds because (a) arrival
// timestamps are computed identically on the intra-shard and mailbox
// paths, (b) per-link FIFO order is preserved, and (c) components placed
// together share no state, so their same-timestamp interleaving is
// unobservable. Randomness consumed by components is keyed to the
// component (each ASIC/controller/injector owns its Rng), never to the
// shard, so co-residency does not change any stream.
//
// A group of size 1 runs inline on the calling thread with no epochs, no
// barrier, and no worker threads — exactly the legacy single-queue
// engine.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/packet_pool.hpp"
#include "sim/event_queue.hpp"
#include "sim/mailbox.hpp"
#include "sim/port.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace ht::sim {

class ShardGroup;
class SnapshotWriter;

/// One simulation domain: event queue + RNG stream + packet pool.
class Shard {
 public:
  Shard(ShardGroup& group, std::size_t id, std::uint64_t run_seed)
      : group_(group),
        id_(id),
        rng_(Rng::for_stream(run_seed, id)),
        pool_(std::make_unique<net::PacketPool>()) {}
  ~Shard();
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  std::size_t id() const { return id_; }
  ShardGroup& group() { return group_; }
  EventQueue& ev() { return ev_; }
  const EventQueue& ev() const { return ev_; }
  /// Shard-local randomness, decorrelated from every other shard's stream
  /// via the splitmix64 seed fanout (sim::Rng::for_stream). Components
  /// that must stay placement-invariant own their Rng instead.
  Rng& rng() { return rng_; }
  const Rng& rng() const { return rng_; }
  net::PacketPool& pool() { return *pool_; }
  const net::PacketPool& pool() const { return *pool_; }

 private:
  ShardGroup& group_;
  std::size_t id_;
  EventQueue ev_;
  Rng rng_;
  /// Leaked at destruction if packets are still checked out (same
  /// philosophy as net::default_packet_pool: a late release must never
  /// see a dangling home pool).
  std::unique_ptr<net::PacketPool> pool_;
};

/// Scheduler for a fixed set of shards; owns the cross-shard links.
class ShardGroup {
 public:
  static constexpr std::uint64_t kDefaultSeed = 0x5eed5eed5eed5eedull;
  /// Propagation assumed for a cross-shard link when the caller gives
  /// none: ~100 m of fiber. Generous lookahead keeps epochs long; a
  /// same-rack 0 ns cable still works, it just synchronizes more often.
  static constexpr TimeNs kDefaultCrossPropagationNs = 500;

  explicit ShardGroup(std::size_t shards, std::uint64_t run_seed = kDefaultSeed);
  ~ShardGroup();
  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  std::size_t size() const { return shards_.size(); }
  Shard& shard(std::size_t i) { return *shards_[i]; }
  const Shard& shard(std::size_t i) const { return *shards_[i]; }

  /// Wire two ports full duplex, like Port::connect on both ends. When
  /// the ports live on different shards the wire becomes a cross-shard
  /// edge: each direction gets an SPSC mailbox, and the link's
  /// propagation + minimum serialization time joins the conservative
  /// lookahead (the epoch length). A chaos wire hook on a cross-shard
  /// direction is supported: the barrier drain schedules the hook
  /// invocation at the stamped arrival time on the destination shard's
  /// queue, so injector state mutates only on the receiving thread and
  /// the per-link FIFO keeps its draw order identical to the intra-shard
  /// path (the shard-count determinism contract extends to chaos links).
  void connect(Port& a, std::size_t shard_a, Port& b, std::size_t shard_b,
               TimeNs propagation_ns = kDefaultCrossPropagationNs);

  /// Conservative lookahead: the epoch length while cross-shard links
  /// exist (min over link directions of propagation + min serialization,
  /// never below 1 ns). Groups with no cross-shard links run a single
  /// epoch per run_until call.
  TimeNs lookahead() const { return lookahead_; }

  /// The group epoch clock: every shard's queue has run to at least this
  /// time. With size() == 1 this tracks the queue's own clock.
  TimeNs now() const { return epoch_now_; }

  /// Advance every shard to `deadline` (epoch loop + mailbox barriers).
  /// Returns the number of events executed across all shards. With
  /// size() == 1, exactly EventQueue::run_until on the calling thread.
  /// Multi-shard groups must be driven through this call only — do not
  /// advance an individual shard's queue directly.
  std::uint64_t run_until(TimeNs deadline);

  /// Sum of events executed across all shards since construction.
  std::uint64_t total_executed() const;

  struct SyncStats {
    std::uint64_t epochs = 0;            ///< barrier rounds completed
    std::uint64_t handoffs = 0;          ///< packets that crossed a shard boundary
    std::uint64_t handoffs_stolen = 0;   ///< moved without a copy (sole ref, compatible pool)
    std::uint64_t handoffs_copied = 0;   ///< copied into the destination shard's pool
    std::uint64_t backpressure = 0;      ///< mailbox ring overflows (spilled, not lost)
  };
  SyncStats sync_stats() const;

  /// Aggregates across every shard, for HyperTester::alloc_cache_reports:
  /// counters are summed; high_water is the sum of per-shard peaks (an
  /// upper bound on the true simultaneous peak).
  EventQueue::SlabStats aggregate_slab_stats() const;
  net::PacketPool::Stats aggregate_pool_stats() const;

  /// Serialize the engine-level replay-invariant state (shard count, run
  /// seed, lookahead, per-shard clock/executed/pending and RNG stream)
  /// into `w` as one "engine" section. Epoch/steal/pool statistics are
  /// deliberately excluded: they depend on how the run was sliced into
  /// run_until calls, not on the simulated state (DESIGN.md §14).
  void write_state(SnapshotWriter& w) const;

 private:
  /// One direction of a cross-shard link.
  struct CrossDir {
    LinkMailbox mailbox;
    Port* src_port = nullptr;  ///< for its wire_hook at drain time
    Port* dst_port = nullptr;
    Shard* dst_shard = nullptr;
  };

  void ensure_workers();
  void worker_main(std::size_t shard_idx);
  /// Run every shard to `target` on the workers; returns events executed.
  std::uint64_t run_shards_until(TimeNs target);
  /// Drain all mailboxes in link order; returns the number of handoffs
  /// whose arrival is <= `deadline` (i.e. that still need event time).
  std::size_t drain_mailboxes(TimeNs deadline);
  net::PacketPtr transfer(net::PacketPtr pkt, net::PacketPool& dst_pool);

  std::uint64_t run_seed_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<CrossDir>> links_;
  TimeNs lookahead_ = 0;
  TimeNs epoch_now_ = 0;
  SyncStats stats_;

  // --- worker pool (only started for size() > 1) -------------------------
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  TimeNs target_ = 0;
  std::size_t pending_workers_ = 0;
  std::uint64_t epoch_executed_ = 0;  ///< accumulated under mu_
  bool stop_ = false;
};

}  // namespace ht::sim
