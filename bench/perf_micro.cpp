// Micro-benchmarks of the hot simulator paths (google-benchmark), plus an
// end-to-end packets-per-second measurement of the Fig. 9 single-port
// workload against the recorded pre-refactor baseline.
//
// Not a paper figure: this tracks the substrate's own performance so the
// figure harnesses stay fast enough to sweep. Run with `--json <path>` (see
// scripts/bench.sh) to write the machine-readable BENCH_perf.json.
#include <benchmark/benchmark.h>

#include <chrono>

#include "apps/tasks.hpp"
#include "common.hpp"
#include "htpr/counter_store.hpp"
#include "net/headers.hpp"
#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "rmt/asic.hpp"
#include "sharded.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"

namespace {

using namespace ht;

void BM_ParsePacket(benchmark::State& state) {
  const auto parser = rmt::Parser::default_graph();
  auto pkt = net::make_packet(net::make_tcp_packet(1, 2, 3, 4, 0x10));
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser.parse(pkt));
  }
}
BENCHMARK(BM_ParsePacket);

void BM_DeparseModified(benchmark::State& state) {
  const auto parser = rmt::Parser::default_graph();
  auto pkt = net::make_packet(net::make_tcp_packet(1, 2, 3, 4, 0x10));
  auto phv = parser.parse(pkt);
  phv.set(net::FieldId::kTcpDport, 99);
  for (auto _ : state) {
    rmt::Parser::deparse(phv);
  }
}
BENCHMARK(BM_DeparseModified);

void BM_ChecksumFix(benchmark::State& state) {
  net::Packet pkt = net::make_tcp_packet(1, 2, 3, 4, 0x10, 0, 0,
                                         static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    net::fix_checksums(pkt);
  }
}
BENCHMARK(BM_ChecksumFix)->Arg(64)->Arg(1500);

void BM_ExactTableLookup(benchmark::State& state) {
  rmt::MatchActionTable table("t", {{net::FieldId::kUdpDport, rmt::MatchKind::kExact}}, 4096);
  for (std::uint64_t i = 0; i < 1024; ++i) {
    table.add_entry({{rmt::KeyMatch{.value = i}}, 0, "a", nullptr});
  }
  const auto parser = rmt::Parser::default_graph();
  auto pkt = net::make_packet(net::make_udp_packet(1, 2, 3, 512));
  const auto phv = parser.parse(pkt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(phv));
  }
}
BENCHMARK(BM_ExactTableLookup);

void BM_CounterStoreUpdate(benchmark::State& state) {
  sim::EventQueue ev;
  rmt::SwitchAsic asic(ev, rmt::AsicConfig{.num_ports = 2});
  htpr::CounterStoreConfig cfg;
  cfg.name = "bm";
  cfg.hash.key_fields = {net::FieldId::kIpv4Sip};
  cfg.hash.buckets = 1 << 14;
  htpr::CounterStore store(asic, cfg);
  rmt::Phv phv;
  phv.packet = net::make_packet(64);
  rmt::ActionContext ctx{phv, asic.registers(), asic.rng(), 0, nullptr};
  std::uint64_t i = 0;
  for (auto _ : state) {
    phv.set(net::FieldId::kIpv4Sip, i++ % 8192);
    benchmark::DoNotOptimize(store.update(ctx, 1));
    store.maintenance_pass(ctx);
  }
}
BENCHMARK(BM_CounterStoreUpdate);

void BM_EventQueueChurn(benchmark::State& state) {
  sim::EventQueue ev;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      ev.schedule_in(static_cast<sim::TimeNs>(i % 7), [] {});
    }
    ev.run_all();
  }
}
BENCHMARK(BM_EventQueueChurn);

void BM_RecirculationLoop(benchmark::State& state) {
  // End-to-end cost of one full recirculation (ingress+egress+loop).
  sim::EventQueue ev;
  rmt::SwitchAsic asic(ev, rmt::AsicConfig{.num_ports = 2});
  auto& t = asic.ingress().add_table("loop", {}, 4);
  t.set_default("loop", [](rmt::ActionContext& ctx) {
    ctx.phv.intrinsic().dest = rmt::Destination::kUnicast;
    ctx.phv.intrinsic().ucast_port = rmt::SwitchAsic::kRecircPortBase;
  });
  asic.inject_from_cpu(net::make_packet(net::make_udp_packet(1, 2, 3, 4, 64)));
  ev.run_until(sim::us(10));
  std::uint64_t prev = asic.recirculations();
  for (auto _ : state) {
    ev.run_until(ev.now() + 570);  // one RTT of simulated time
    benchmark::DoNotOptimize(asic.recirculations() - prev);
  }
}
BENCHMARK(BM_RecirculationLoop);

/// Packets/sec of the pre-refactor simulation core on the workload below
/// (64B, 100G, 2ms window), measured on the same machine as the refactor:
/// median of interleaved best-of-3 runs of the pre-refactor binary. The
/// pooled-packet/slab-event/timer-wheel engine is gated on beating this by
/// >= 2x (see DESIGN.md section 8).
constexpr double kPreRefactorPktsPerSec = 730e3;

/// Interpreted-walk packets/sec recorded in BENCH_perf.json before the
/// task-compiled fast path landed (same machine, same workload). The fused
/// path is gated on >= 2x this number; the fresh interpreted series is
/// also re-measured every run so the two baselines stay distinguishable.
constexpr double kPreFusionPktsPerSec = 1.53283e6;

struct Fig9Series {
  double best_pps = 0.0;
  double best_wall = 0.0;
};

/// One fig9 throughput series: wall-clock packets/sec over a 2ms simulated
/// window at 64B/100G, best of `reps` (the container's scheduler makes
/// single runs noisy). `fastpath` selects the task-compiled fast path or
/// the interpreted reference walk.
Fig9Series run_fig9_series(ht::bench::BenchJson& json, int reps, bool fastpath) {
  using namespace ht;
  using clock = std::chrono::steady_clock;
  Fig9Series out;
  for (int rep = 0; rep < reps; ++rep) {
    bench::Testbed tb(2, 100.0, 1, fastpath);
    auto app = apps::throughput_test(0x02020202, 0x01010101, {1}, 64, 0);
    tb.tester->load(app.task);
    tb.tester->start();
    const auto t0 = clock::now();
    tb.tester->run_for(sim::ms(2));
    const double wall = std::chrono::duration<double>(clock::now() - t0).count();
    const auto pkts = tb.tester->asic().egress_packets();
    const double pps = static_cast<double>(pkts) / wall;
    bench::row("  [%s] rep %d: egress_packets=%llu wall=%.3fs pkts/s=%.0f",
               fastpath ? "fused" : "interp", rep, static_cast<unsigned long long>(pkts), wall,
               pps);
    if (pps > out.best_pps) {
      out.best_pps = pps;
      out.best_wall = wall;
    }
    if (!fastpath && rep + 1 == reps) {
      // The tester assembles the uniform reports from its registry-backed
      // instrumentation; no per-bench stats plumbing. Reported for the
      // interpreted series so the numbers stay comparable across PRs.
      const auto reports = tb.tester->alloc_cache_reports();
      for (const auto& r : reports) bench::row("  %s", sim::format_alloc_cache(r).c_str());
      json.add("fig9_packet_pool_hit_rate", reports[0].hit_rate(), "ratio", 0.0);
      json.add("fig9_event_slab_hit_rate", reports[1].hit_rate(), "ratio", 0.0);
      json.add("fig9_event_slab_high_water", static_cast<double>(reports[1].high_water),
               "nodes", 0.0);
      json.add("fig9_heap_closures",
               static_cast<double>(tb.tester->events().slab_stats().heap_closures), "closures",
               0.0);
    }
  }
  return out;
}

/// End-to-end throughput of the Fig. 9(a) single-port workload, both
/// paths: the interpreted reference walk (the recorded baseline series)
/// and the task-compiled fast path, interleaved rep-by-rep.
void run_fig9_workload(ht::bench::BenchJson& json, int reps) {
  using namespace ht;
  bench::headline("Fig. 9 single-port workload (64B, 100G, 2ms window)",
                  "interpreted walk vs. task-compiled fast path");
  const Fig9Series interp = run_fig9_series(json, reps, /*fastpath=*/false);
  const Fig9Series fused = run_fig9_series(json, reps, /*fastpath=*/true);
  bench::row("  interpreted best: %.0f pkts/s (prerefactor %.0f, %.2fx)", interp.best_pps,
             kPreRefactorPktsPerSec, interp.best_pps / kPreRefactorPktsPerSec);
  bench::row("  fused best:       %.0f pkts/s (%.2fx interp, %.2fx pre-fusion baseline)",
             fused.best_pps, fused.best_pps / interp.best_pps,
             fused.best_pps / kPreFusionPktsPerSec);
  json.add("fig9_pkts_per_sec", interp.best_pps, "pkts/s", interp.best_wall);
  json.add("fig9_pkts_per_sec_prerefactor", kPreRefactorPktsPerSec, "pkts/s", 0.0);
  json.add("fig9_speedup_vs_prerefactor", interp.best_pps / kPreRefactorPktsPerSec, "ratio",
           0.0);
  json.add("fig9_pkts_per_sec_fused", fused.best_pps, "pkts/s", fused.best_wall);
  json.add("fig9_fused_speedup", fused.best_pps / interp.best_pps, "ratio", 0.0);
  json.add("fig9_pkts_per_sec_prefusion", kPreFusionPktsPerSec, "pkts/s", 0.0);
  json.add("fig9_fused_speedup_vs_prefusion", fused.best_pps / kPreFusionPktsPerSec, "ratio",
           0.0);
}

/// Wall-clock scaling of the shard-per-worker engine on the fig10(c)
/// workload (bench/sharded.hpp): eight independent 100G testers over
/// {1,2,4,8} shards, best of `reps`. Simulated results are byte-identical
/// across the sweep (tests/determinism_test.cpp); this records how much
/// wall-clock the worker threads buy on this machine.
void run_fig10_scaling(ht::bench::BenchJson& json, int reps) {
  using namespace ht;
  bench::headline("Fig. 10(c) sharded scaling (8 testers x 100G, 64B, 2ms window)",
                  "shard-per-worker engine; byte-identical results across shard counts");
  double pps1 = 0.0;
  for (const std::size_t nshards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    bench::ShardedRun best;
    for (int rep = 0; rep < reps; ++rep) {
      const bench::ShardedRun r = bench::run_sharded_throughput(nshards);
      if (r.pkts_per_sec > best.pkts_per_sec) best = r;
    }
    if (nshards == 1) pps1 = best.pkts_per_sec;
    bench::row("  shards=%zu: packets=%llu wall=%.3fs pkts/s=%.0f (%.2fx)", nshards,
               static_cast<unsigned long long>(best.packets), best.wall_s, best.pkts_per_sec,
               best.pkts_per_sec / pps1);
    json.add("fig10_pkts_per_sec_shards" + std::to_string(nshards), best.pkts_per_sec, "pkts/s",
             best.wall_s);
    if (nshards == 8) {
      json.add("fig10_scaling_efficiency", best.pkts_per_sec / (8.0 * pps1), "ratio", 0.0);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  ht::bench::BenchJson json("perf", ht::bench::take_json_path(argc, argv));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_fig9_workload(json, 5);
  run_fig10_scaling(json, 2);
  return json.write() ? 0 : 1;
}
