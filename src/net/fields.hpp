// Central field model shared by the whole system.
//
// NTAPI statements, the RMT parser/deparser, the HTPS editor, and HTPR
// queries all refer to packet header fields through `FieldId`. Each field
// carries a dotted name ("ipv4.sip"), a bit width, and — for on-wire fields
// — the header it belongs to and its bit offset inside that header. Control
// fields (Table 1 of the paper: pkt_len, interval, port, loop, payload) and
// per-packet metadata have no wire position.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ht::net {

/// Protocol headers understood by the default parse graph. The RMT parser
/// is programmable, so user-defined headers can be registered at runtime;
/// these are the built-ins every testing task in the paper uses.
enum class HeaderKind : std::uint8_t {
  kEthernet,
  kIpv4,
  kTcp,
  kUdp,
  kIcmp,
  /// NVP ("new versioned protocol"): a custom L4 protocol (IP proto 253,
  /// the RFC 3692 experimental number) used to demonstrate the paper's
  /// §2.3 claim — HyperTester tests *new protocols*, including responsive
  /// generation, because the parser and NTAPI are protocol-independent.
  kNvp,
  kNone,  ///< control/metadata fields
};

/// Identifiers for every field NTAPI can touch. Order matters only in that
/// the numeric value indexes the PHV array.
enum class FieldId : std::uint16_t {
  // Ethernet
  kEthDst,
  kEthSrc,
  kEthType,
  // IPv4
  kIpv4Version,
  kIpv4Ihl,
  kIpv4Dscp,
  kIpv4Ecn,
  kIpv4TotalLen,
  kIpv4Id,
  kIpv4Flags,
  kIpv4FragOff,
  kIpv4Ttl,
  kIpv4Proto,
  kIpv4Checksum,
  kIpv4Sip,
  kIpv4Dip,
  // TCP
  kTcpSport,
  kTcpDport,
  kTcpSeqNo,
  kTcpAckNo,
  kTcpDataOff,
  kTcpFlags,
  kTcpWindow,
  kTcpChecksum,
  kTcpUrgent,
  // UDP
  kUdpSport,
  kUdpDport,
  kUdpLen,
  kUdpChecksum,
  // ICMP
  kIcmpType,
  kIcmpCode,
  kIcmpChecksum,
  kIcmpId,
  kIcmpSeq,
  // NVP (custom protocol, 12 bytes)
  kNvpMsgType,
  kNvpFlags,
  kNvpSessionId,
  kNvpSeq,
  kNvpNonce,
  // Control fields (Table 1)
  kPktLen,    ///< generated packet length in bytes
  kInterval,  ///< inter-departure interval in ns
  kPort,      ///< injection port
  kLoop,      ///< number of injection loops (0 = forever)
  kPayload,   ///< payload constant (handled by switch CPU, not the PHV)
  // Per-packet metadata (populated by the ASIC)
  kMetaIngressPort,
  kMetaEgressPort,
  kMetaIngressTstamp,  ///< ns MAC timestamp on arrival
  kMetaEgressTstamp,   ///< ns timestamp at egress deparser
  kMetaPacketId,       ///< replica sequence number maintained by the editor
  kMetaRng,            ///< output of the uniform RNG primitive
  kMetaDigest,         ///< hash digest computed by HTPR
  kMetaTemplateId,     ///< which template packet a replica came from
  kCount,              ///< sentinel: number of field ids
};

constexpr std::size_t kFieldCount = static_cast<std::size_t>(FieldId::kCount);

/// Static description of one field.
struct FieldInfo {
  FieldId id;
  std::string_view name;  ///< dotted NTAPI name, e.g. "tcp.dport"
  HeaderKind header;
  std::uint16_t bit_offset;  ///< offset inside the header (wire fields only)
  std::uint16_t bit_width;
};

/// Immutable registry of all built-in fields.
class FieldRegistry {
 public:
  static const FieldRegistry& instance();

  const FieldInfo& info(FieldId id) const;
  /// Look up by dotted name; nullopt when unknown.
  std::optional<FieldId> by_name(std::string_view name) const;
  /// All fields that live in `header`, in wire order.
  std::span<const FieldId> fields_of(HeaderKind header) const;
  /// Maximum representable value of a field (all-ones of its width).
  std::uint64_t max_value(FieldId id) const;

 private:
  FieldRegistry();
  std::vector<FieldInfo> infos_;
  std::vector<std::vector<FieldId>> by_header_;
};

/// Convenience accessors used pervasively.
inline std::string_view field_name(FieldId id) {
  return FieldRegistry::instance().info(id).name;
}
inline std::uint16_t field_width(FieldId id) {
  return FieldRegistry::instance().info(id).bit_width;
}
/// Width mask of a field (all-ones of its bit width), served from a flat
/// table built once so per-packet paths (Phv::set on every action write)
/// skip the registry's cross-TU lookup.
inline std::uint64_t field_mask(FieldId id) {
  static const std::array<std::uint64_t, kFieldCount> masks = [] {
    std::array<std::uint64_t, kFieldCount> m{};
    const auto& reg = FieldRegistry::instance();
    for (std::size_t i = 0; i < kFieldCount; ++i) {
      const std::uint16_t w = reg.info(static_cast<FieldId>(i)).bit_width;
      m[i] = w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
    }
    return m;
  }();
  return masks[static_cast<std::size_t>(id)];
}
inline HeaderKind field_header(FieldId id) {
  return FieldRegistry::instance().info(id).header;
}

/// True for the Table-1 control fields that steer generation rather than
/// ending up in a header.
bool is_control_field(FieldId id);
/// True for ASIC-populated metadata fields.
bool is_metadata_field(FieldId id);
/// True for fields with a wire position.
bool is_header_field(FieldId id);

/// TCP flag bits, used throughout the stateless-connection machinery.
namespace tcpflag {
constexpr std::uint64_t kFin = 0x01;
constexpr std::uint64_t kSyn = 0x02;
constexpr std::uint64_t kRst = 0x04;
constexpr std::uint64_t kPsh = 0x08;
constexpr std::uint64_t kAck = 0x10;
constexpr std::uint64_t kUrg = 0x20;
constexpr std::uint64_t kSynAck = kSyn | kAck;
constexpr std::uint64_t kPshAck = kPsh | kAck;
constexpr std::uint64_t kFinAck = kFin | kAck;
}  // namespace tcpflag

/// IPv4 protocol numbers.
namespace ipproto {
constexpr std::uint64_t kIcmp = 1;
constexpr std::uint64_t kTcp = 6;
constexpr std::uint64_t kUdp = 17;
constexpr std::uint64_t kNvp = 253;  ///< RFC 3692 experimental
}  // namespace ipproto

/// EtherTypes.
namespace ethertype {
constexpr std::uint64_t kIpv4 = 0x0800;
constexpr std::uint64_t kArp = 0x0806;
}  // namespace ethertype

}  // namespace ht::net
