// Tests for the switch-CPU control plane: counter pull model, digest
// routing and subscription, eviction aggregation.
#include <gtest/gtest.h>

#include "switchcpu/controller.hpp"

namespace ht::switchcpu {
namespace {

struct Fixture {
  Fixture() : asic(ev, rmt::AsicConfig{.num_ports = 2}), ctl(asic) {}
  sim::EventQueue ev;
  rmt::SwitchAsic asic;
  Controller ctl;
};

TEST(Controller, ReadSingleCounter) {
  Fixture f;
  auto& reg = f.asic.registers().create("c", 8, 64);
  reg.write(3, 42);
  EXPECT_EQ(f.ctl.read_counter("c", 3), 42u);
}

TEST(Controller, BatchedPullIsFasterAndDeliversValues) {
  Fixture f;
  auto& reg = f.asic.registers().create("c", 4096, 64);
  for (std::size_t i = 0; i < reg.size(); ++i) reg.write(i, i * 2);

  sim::TimeNs slow_done = 0, fast_done = 0;
  std::vector<std::uint64_t> values;
  f.ctl.read_counters("c", /*batched=*/false, [&](std::vector<std::uint64_t> v) {
    slow_done = f.ev.now();
    values = std::move(v);
  });
  f.ev.run_until(sim::seconds(10));
  ASSERT_EQ(values.size(), 4096u);
  EXPECT_EQ(values[100], 200u);

  const auto t0 = f.ev.now();
  f.ctl.read_counters("c", /*batched=*/true,
                      [&](std::vector<std::uint64_t>) { fast_done = f.ev.now(); });
  f.ev.run_until(f.ev.now() + sim::seconds(10));
  EXPECT_GT(slow_done, (fast_done - t0) * 10);  // order-of-magnitude gap
}

TEST(Controller, PullModelMatchesFig16bScale) {
  const PullModel m;
  // 65536 counters: <0.2s batched, ~3s one-by-one.
  EXPECT_LT(m.batched_ns(65536), 0.2e9);
  EXPECT_GT(m.one_by_one_ns(65536), 2.0e9);
}

TEST(Controller, DigestsStoredPerType) {
  Fixture f;
  f.asic.digests().emit({.type = 7, .values = {1, 2}, .byte_size = 16});
  f.asic.digests().emit({.type = 9, .values = {3}, .byte_size = 12});
  f.asic.digests().emit({.type = 7, .values = {4, 5}, .byte_size = 16});
  f.ev.run_until(sim::seconds(1));
  EXPECT_EQ(f.ctl.digest_count(), 3u);
  EXPECT_EQ(f.ctl.digests(7).size(), 2u);
  EXPECT_EQ(f.ctl.digests(9).size(), 1u);
  EXPECT_TRUE(f.ctl.digests(42).empty());
  EXPECT_EQ(f.ctl.digests(7)[1].values[0], 4u);
}

TEST(Controller, SubscribersSeeOnlyTheirType) {
  Fixture f;
  int a = 0, b = 0;
  f.ctl.subscribe(1, [&](const rmt::DigestMessage&) { ++a; });
  f.ctl.subscribe(2, [&](const rmt::DigestMessage&) { ++b; });
  f.ctl.subscribe(2, [&](const rmt::DigestMessage&) { ++b; });  // two subscribers
  f.asic.digests().emit({.type = 1, .values = {0}, .byte_size = 12});
  f.asic.digests().emit({.type = 2, .values = {0}, .byte_size = 12});
  f.ev.run_until(sim::seconds(1));
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Controller, EvictionAggregationByKey) {
  Fixture f;
  f.ctl.set_eviction_digest_type(100);
  f.asic.digests().emit({.type = 100, .values = {0xAB, 5}, .byte_size = 16});
  f.asic.digests().emit({.type = 100, .values = {0xAB, 7}, .byte_size = 16});
  f.asic.digests().emit({.type = 100, .values = {0xCD, 1}, .byte_size = 16});
  f.ev.run_until(sim::seconds(1));
  EXPECT_EQ(f.ctl.evicted_counters().at(0xAB), 12u);
  EXPECT_EQ(f.ctl.evicted_counters().at(0xCD), 1u);
}

TEST(DigestEngine, DropsBeyondQueueCapacity) {
  sim::EventQueue ev;
  rmt::DigestEngine::Config cfg;
  cfg.queue_capacity = 4;
  rmt::SwitchAsic asic(ev, rmt::AsicConfig{.num_ports = 2, .digest = cfg});
  for (int i = 0; i < 100; ++i) {
    asic.digests().emit({.type = 1, .values = {0}, .byte_size = 16});
  }
  EXPECT_GT(asic.digests().dropped(), 0u);
  ev.run_until(sim::seconds(1));
  // At most capacity + in-service messages got through per pump cycle.
  EXPECT_LT(asic.digests().delivered(), 100u);
  EXPECT_EQ(asic.digests().delivered() + asic.digests().dropped(), 100u);
}

TEST(DigestEngine, GoodputGrowsWithMessageSize) {
  sim::EventQueue ev;
  rmt::SwitchAsic asic(ev, rmt::AsicConfig{.num_ports = 2});
  const double g16 = 16 * 8 / asic.digests().service_ns(16);
  const double g256 = 256 * 8 / asic.digests().service_ns(256);
  EXPECT_GT(g256, 5 * g16);  // Fig 16a shape
  // ~4.5Mbps at 256B (paper's saturation point).
  EXPECT_NEAR(g256 * 1e9 / 1e6, 4.5, 0.3);
}

}  // namespace
}  // namespace ht::switchcpu
