#!/usr/bin/env sh
# Regenerate the machine-readable bench sidecars:
#
#   BENCH_perf.json  perf_micro: hot-path micro-benchmarks plus the Fig. 9
#                    single-port packets/sec measurement against the
#                    recorded pre-refactor baseline (see DESIGN.md sec. 8)
#   BENCH_fig9.json  fig9_throughput_single_port: achieved Gbps per packet
#                    size on 100G/40G ports, plus a `telemetry` block —
#                    the 64B run's metrics-registry dump (per-port wire
#                    latency quantiles, queue-depth gauges; DESIGN.md
#                    sec. 10)
#   BENCH_fig9_lossy.json  the same 100G sweep through a chaos link with
#                    1% Bernoulli loss: delivered goodput + drop counters
#                    (DESIGN.md sec. 9) + the final run's telemetry block
#   BENCH_fig9_crash.json  the sweep under the supervised run lifecycle
#                    (DESIGN.md sec. 14): tester killed at 50%, restored
#                    from the newest attested snapshot. Reports delivered
#                    packets, result completeness vs an uninterrupted
#                    supervised run (must be 1.0), and recovery counts;
#                    the binary exits nonzero if the recovered final state
#                    is not byte-identical to the clean run's
#   BENCH_fig10.json fig10_throughput_multi_port: per-port line-rate table
#                    plus the sharded-engine wall-clock scaling sweep
#                    (fig10_pkts_per_sec_shards{1,2,4,8} and
#                    fig10_scaling_efficiency; DESIGN.md sec. 13). Pass
#                    `--shards N` through to measure a single shard count
#                    and `--testers N` to grow the fleet beyond the
#                    default 8 (auto-placed over the shards).
#   BENCH_l7.json    l7_cps_rps (with --l7): the stateful L4-L7 scenario
#                    axis (DESIGN.md sec. 15) — CPS high-water against the
#                    million-connection TCB store, request/response RPS
#                    with p99 latency clean and under chaos, and the
#                    shard-count determinism check (the binary exits
#                    nonzero if any shard count diverges)
#
#   scripts/bench.sh [build-dir] [--shards N] [--testers N] [--l7]
#
# The build dir must already be configured+built (default: build). Output
# files land in the repo root. Wall-clock numbers depend on machine load;
# prefer an otherwise idle machine.
set -eu

cd "$(dirname "$0")/.."

BUILD_DIR="build"
SHARDS_ARGS=""
TESTERS_ARGS=""
RUN_L7=0
while [ $# -gt 0 ]; do
  case "$1" in
    --shards) SHARDS_ARGS="--shards $2"; shift 2 ;;
    --testers) TESTERS_ARGS="--testers $2"; shift 2 ;;
    --l7) RUN_L7=1; shift ;;
    *) BUILD_DIR="$1"; shift ;;
  esac
done

if [ ! -x "$BUILD_DIR/bench/perf_micro" ]; then
  echo "bench.sh: $BUILD_DIR/bench/perf_micro not built (run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

"$BUILD_DIR/bench/perf_micro" --json BENCH_perf.json
"$BUILD_DIR/bench/fig9_throughput_single_port" --json BENCH_fig9.json
"$BUILD_DIR/bench/fig9_throughput_single_port" --loss 0.01 --json BENCH_fig9_lossy.json
"$BUILD_DIR/bench/fig9_throughput_single_port" --crash --json BENCH_fig9_crash.json
# shellcheck disable=SC2086 -- SHARDS_ARGS/TESTERS_ARGS are deliberately word-split
"$BUILD_DIR/bench/fig10_throughput_multi_port" $SHARDS_ARGS $TESTERS_ARGS --json BENCH_fig10.json

WROTE="BENCH_perf.json BENCH_fig9.json BENCH_fig9_lossy.json BENCH_fig9_crash.json BENCH_fig10.json"
if [ "$RUN_L7" = 1 ]; then
  "$BUILD_DIR/bench/l7_cps_rps" --json BENCH_l7.json
  WROTE="$WROTE BENCH_l7.json"
fi

# The fig9 sidecars must carry the registry dump (always present; with
# -DHT_TELEMETRY=OFF the histograms section is simply empty).
for f in BENCH_fig9.json BENCH_fig9_lossy.json; do
  grep -q '"telemetry":' "$f" || { echo "bench.sh: $f missing telemetry block" >&2; exit 1; }
done

echo
echo "wrote $WROTE"
