// Incremental HTTP/1.1 request parser (DESIGN.md §15).
//
// The workload server parses requests the way a real server must: byte by
// byte, across segment boundaries, with keep-alive and pipelining — a
// single segment may complete several requests, and a request head may
// span many segments. The parser state is a fixed 24-byte struct embedded
// in the Tcb (no allocation, no per-connection buffers): request targets
// and header names are folded into running FNV hashes instead of being
// stored, which is exactly enough for a load model that classifies and
// responds but never proxies.
//
// Recognized: request line (method, target, HTTP/1.0 vs 1.1), the
// Content-Length and Connection headers (case-insensitive), header-section
// end, and body skipping. Malformed heads raise `bad` and resync at the
// next blank line, modelling a server that answers 400 and keeps going.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace ht::dut::stateful {

enum class HttpMethod : std::uint8_t { kGet = 0, kHead, kPost, kOther };

/// Summary of one completed (or malformed) request head.
struct HttpRequest {
  HttpMethod method = HttpMethod::kGet;
  bool keep_alive = true;   ///< HTTP/1.1 default, honours Connection header
  bool bad = false;         ///< malformed head: answer 400
  std::uint32_t content_length = 0;
  std::uint64_t target_hash = 0;  ///< FNV-1a64 of the request-target bytes
};

/// Persistent per-connection parser state; all-zero is "expecting a new
/// request". Sized and aligned to pack into the Tcb cache line.
struct HttpParseState {
  std::uint64_t target_hash = 0;
  std::uint32_t scratch = 0;        ///< running name/value hash or CL digits
  std::uint32_t content_length = 0; ///< committed CL, then body countdown
  std::uint16_t match = 0;          ///< literal-match cursor / token length
  std::uint8_t state = 0;           ///< ParserState (http_model.cpp)
  std::uint8_t flags = 0;           ///< method, version, connection, bad bits
};
static_assert(sizeof(HttpParseState) <= 24);

class HttpParser {
 public:
  /// Feed one TCP segment's payload. Invokes `on_request(const
  /// HttpRequest&)` once per completed request head, in order; the state
  /// carries partial heads and body countdowns to the next call.
  template <typename F>
  static void feed(HttpParseState& st, std::span<const std::uint8_t> bytes,
                   F&& on_request) {
    for (std::size_t i = 0; i < bytes.size();) {
      i += step(st, bytes.subspan(i));
      if (take_ready(st)) on_request(finish(st));
    }
  }

  /// Advance the machine over a prefix of `bytes`; returns bytes consumed
  /// (>= 1 when bytes is non-empty). Sets an internal ready bit when a
  /// request head completed.
  static std::size_t step(HttpParseState& st, std::span<const std::uint8_t> bytes);

 private:
  /// True once per completed head; clears the ready bit.
  static bool take_ready(HttpParseState& st);
  /// Extract the summary and reset the head-tracking fields for the next
  /// pipelined request (body countdown survives in content_length).
  static HttpRequest finish(HttpParseState& st);
};

/// Render a minimal response head + deterministic body: "HTTP/1.1 <code>
/// <reason>\r\nContent-Length: <n>\r\nConnection: <keep-alive|close>\r\n
/// \r\n<body>". The body is `body_bytes` of 'x'.
std::string http_response(int status, std::size_t body_bytes, bool keep_alive);

/// FNV-1a64 of a byte string — the same fold the parser applies to request
/// targets, exposed so tests and the server can pre-hash known targets.
std::uint64_t http_hash(std::string_view s);

}  // namespace ht::dut::stateful
