// Delay measurement (§7.5 case study, Fig 18).
//
// Measures a DUT's forwarding delay two ways with the same probe stream:
//  - P4-pipeline timestamps ("SW"): the editor writes the egress pipeline
//    timestamp into tcp.seq_no; a receiver query computes
//    arrival - embedded per probe, entirely on the data plane;
//  - MAC hardware timestamps ("HW"): TX/RX timestamps at the port MACs,
//    the most accurate mode.
//
//   $ ./delay_measurement [dut_delay_ns]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/tasks.hpp"
#include "core/hypertester.hpp"
#include "dut/forwarder.hpp"
#include "net/packet_builder.hpp"
#include "sim/stats.hpp"

int main(int argc, char** argv) {
  using namespace ht;
  const double dut_delay = argc > 1 ? std::atof(argv[1]) : 650.0;

  HyperTester tester;
  dut::Forwarder dut(tester.events(), {.num_ports = 2,
                                       .forward_delay_ns = dut_delay,
                                       .delay_jitter_ns = 15.0});
  tester.asic().port(1).connect(&dut.port(0));
  dut.port(0).connect(&tester.asic().port(1));
  tester.asic().port(2).connect(&dut.port(1));
  dut.port(1).connect(&tester.asic().port(2));

  // HW mode: MAC timestamps captured at the tester's ports.
  std::uint64_t last_tx = 0;
  std::vector<double> hw_samples;
  tester.asic().port(1).on_transmit = [&](const net::Packet&, sim::TimeNs t) { last_tx = t; };
  auto& rx_port = tester.asic().port(2);
  auto inner = rx_port.on_receive;
  rx_port.on_receive = [&, inner](net::PacketPtr pkt) {
    hw_samples.push_back(static_cast<double>(tester.events().now() - last_tx));
    if (inner) inner(std::move(pkt));
  };

  // SW mode: the delay_test task (timestamp piggyback + delta query).
  auto app = apps::delay_test(net::ipv4_address("10.1.0.1"), net::ipv4_address("10.0.0.1"),
                              {1}, {2}, /*interval_ns=*/50'000);
  tester.load(app.task);
  tester.start();
  tester.run_for(sim::ms(100));

  const auto probes = tester.query_matched(app.q_delay);
  const double sw_mean =
      static_cast<double>(tester.query_total(app.q_delay)) / static_cast<double>(probes);
  sim::RunningStats hw;
  for (const double d : hw_samples) hw.push(d);

  std::printf("DUT configured delay: %.0fns (+ wire serialization)\n", dut_delay);
  std::printf("probes: %llu\n", static_cast<unsigned long long>(probes));
  std::printf("HyperTester-HW (MAC timestamps): mean %.1fns  p99 %.1fns\n", hw.mean(),
              sim::percentile(hw_samples, 99));
  std::printf("HyperTester-SW (P4 timestamps):  mean %.1fns\n", sw_mean);
  std::printf("SW/HW ratio: %.2fx (the paper's Fig 18: SW slightly above HW)\n",
              sw_mean / hw.mean());
  return 0;
}
