// MoonGen baseline model (§7's comparison point).
//
// The paper compares HyperTester against MoonGen, the DPDK-based software
// packet generator, on commodity servers. We do not port MoonGen; we model
// the mechanisms that produce its measured behaviour:
//
//  - *throughput*: each CPU core sustains a bounded packet rate
//    (~14.88 Mpps, i.e. one fully-loaded 10G port at 64B — Fig 10b's
//    "one core per 10Gbps, 80Gbps with 8 cores"); larger packets reach
//    line rate earlier because the per-packet cost dominates.
//  - *rate control*: software pacing transmits in batches, so
//    inter-departure times alternate between back-to-back gaps and long
//    waits; NIC hardware rate control paces better but quantizes to the
//    NIC's internal tick and adds queue jitter — an order of magnitude
//    above the ASIC timer's precision (Fig 11).
//  - *timestamping*: software (CPU) timestamps carry microsecond-scale
//    overhead and variance, which inflates measured delays ~3x vs MAC
//    hardware timestamps (Fig 18).
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/port.hpp"
#include "sim/random.hpp"

namespace ht::baseline {

struct MoonGenModel {
  double per_core_pps = 14.88e6;  ///< packet rate one core can sustain
  std::size_t batch_size = 32;

  // Software pacing (busy-wait between batches).
  double sw_sleep_granularity_ns = 1'500.0;  ///< scheduler/TSC loop quantum
  double sw_jitter_sigma_ns = 900.0;

  // NIC hardware rate control.
  double hw_tick_ns = 102.4;         ///< internal pacing quantum
  double hw_jitter_sigma_ns = 55.0;  ///< DMA/queue arbitration noise

  // Timestamping (Fig 18).
  double sw_timestamp_overhead_ns = 1'400.0;
  double sw_timestamp_sigma_ns = 450.0;
  double hw_timestamp_sigma_ns = 8.0;

  /// Throughput for `cores` cores driving `ports` ports of
  /// `per_port_gbps` each (MoonGen pins one core per port). Line-rate
  /// convention: includes Ethernet overhead.
  double throughput_gbps(std::size_t pkt_bytes, std::size_t cores, std::size_t ports,
                         double per_port_gbps) const;

  /// Packets per second achievable (same limits).
  double throughput_pps(std::size_t pkt_bytes, std::size_t cores, std::size_t ports,
                        double per_port_gbps) const;
};

/// A running MoonGen instance: emits packets into a sim::Port with the
/// model's pacing behaviour. Used head-to-head against HTPS in the
/// rate-control and delay benchmarks.
class MoonGenGenerator {
 public:
  enum class RateControl { kSoftware, kHardwareNic };

  struct Config {
    MoonGenModel model;
    RateControl rate_control = RateControl::kHardwareNic;
    double target_pps = 1e6;
    std::size_t pkt_bytes = 64;
    std::size_t cores = 1;
    std::uint64_t seed = 31;
  };

  MoonGenGenerator(sim::EventQueue& ev, sim::Port& port, Config cfg);

  /// Begin emitting; runs until stop() or the event horizon.
  void start();
  void stop() { running_ = false; }

  std::uint64_t emitted() const { return emitted_; }

  /// Apply the software-timestamp cost model to a true delay (Fig 18).
  static double sw_timestamped_delay_ns(const MoonGenModel& model, double true_delay_ns,
                                        sim::Rng& rng);

 private:
  void emit_batch();

  sim::EventQueue& ev_;
  sim::Port& port_;
  Config cfg_;
  sim::Rng rng_;
  bool running_ = false;
  double next_tx_ns_ = 0.0;
  std::uint64_t emitted_ = 0;
};

}  // namespace ht::baseline
