// Unit tests for the RMT ASIC substrate: parser, tables, registers,
// pipelines, traffic manager, recirculation, digests, resources.
#include <gtest/gtest.h>

#include "net/headers.hpp"
#include "net/packet_builder.hpp"
#include "rmt/asic.hpp"
#include "rmt/hashing.hpp"
#include "sim/stats.hpp"
#include "testutil.hpp"

namespace ht::rmt {
namespace {

using net::FieldId;

Phv parse_udp(std::uint16_t sport = 10, std::uint16_t dport = 20) {
  auto pkt = net::make_packet(net::make_udp_packet(0x01010101, 0x02020202, sport,
                                                                dport, 64));
  return Parser::default_graph().parse(pkt);
}

TEST(Parser, ExtractsCanonicalStack) {
  const Phv phv = parse_udp(1234, 80);
  EXPECT_TRUE(phv.header_valid(net::HeaderKind::kEthernet));
  EXPECT_TRUE(phv.header_valid(net::HeaderKind::kIpv4));
  EXPECT_TRUE(phv.header_valid(net::HeaderKind::kUdp));
  EXPECT_FALSE(phv.header_valid(net::HeaderKind::kTcp));
  EXPECT_EQ(phv.get(FieldId::kUdpSport), 1234u);
  EXPECT_EQ(phv.get(FieldId::kUdpDport), 80u);
  EXPECT_EQ(phv.get(FieldId::kIpv4Sip), 0x01010101u);
  EXPECT_EQ(phv.get(FieldId::kPktLen), 64u);
}

TEST(Parser, StopsOnTruncatedPacket) {
  auto pkt = net::make_packet(16);  // Ethernet only, no room for IPv4
  net::set_field(*pkt, FieldId::kEthType, net::ethertype::kIpv4);
  const Phv phv = Parser::default_graph().parse(pkt);
  EXPECT_TRUE(phv.header_valid(net::HeaderKind::kEthernet));
  EXPECT_FALSE(phv.header_valid(net::HeaderKind::kIpv4));
}

TEST(Parser, DeparseWritesFieldsBack) {
  auto pkt = net::make_packet(net::make_udp_packet(1, 2, 3, 4, 64));
  Phv phv = Parser::default_graph().parse(pkt);
  phv.set(FieldId::kUdpDport, 9999);
  phv.set(FieldId::kIpv4Ttl, 7);
  Parser::deparse(phv);
  EXPECT_EQ(net::get_field(*pkt, FieldId::kUdpDport), 9999u);
  EXPECT_EQ(net::get_field(*pkt, FieldId::kIpv4Ttl), 7u);
}

TEST(Parser, CustomGraphUnknownEtherTypeAccepts) {
  auto pkt = net::make_packet(net::make_udp_packet(1, 2, 3, 4, 64));
  net::set_field(*pkt, FieldId::kEthType, 0x88B5);  // experimental
  const Phv phv = Parser::default_graph().parse(pkt);
  EXPECT_TRUE(phv.header_valid(net::HeaderKind::kEthernet));
  EXPECT_FALSE(phv.header_valid(net::HeaderKind::kIpv4));
}

TEST(HashUnit, DeterministicAndSeeded) {
  const HashUnit h1(0), h2(0), h3(99);
  const std::vector<std::uint8_t> data = {1, 2, 3, 4};
  EXPECT_EQ(h1.crc32(data), h2.crc32(data));
  EXPECT_NE(h1.crc32(data), h3.crc32(data));
}

TEST(HashUnit, FieldHashTruncates) {
  const HashUnit h(0);
  const std::vector<std::uint64_t> values = {0x01020304, 80};
  const std::vector<net::FieldId> fields = {FieldId::kIpv4Sip, FieldId::kTcpDport};
  const auto h16 = h.hash_fields(values, fields, 16);
  const auto h32 = h.hash_fields(values, fields, 32);
  EXPECT_LT(h16, 1u << 16);
  EXPECT_EQ(h16, h32 & 0xFFFFu);
}

TEST(RegisterArray, SaluAtomicity) {
  RegisterArray reg("r", 4, 32);
  const auto out = reg.execute(2, [](std::uint64_t& c) {
    c += 5;
    return c * 2;
  });
  EXPECT_EQ(out, 10u);
  EXPECT_EQ(reg.read(2), 5u);
  EXPECT_EQ(reg.salu_executions(), 1u);
}

TEST(RegisterArray, WidthMasking) {
  RegisterArray reg("r", 1, 8);
  reg.write(0, 0x1FF);
  EXPECT_EQ(reg.read(0), 0xFFu);
}

TEST(RegisterArray, OutOfRangeThrows) {
  RegisterArray reg("r", 2, 32);
  EXPECT_THROW(reg.read(2), std::out_of_range);
  EXPECT_THROW(reg.write(5, 1), std::out_of_range);
}

TEST(RegisterFile, NamedCreateGetDuplicates) {
  RegisterFile rf;
  rf.create("a", 8);
  EXPECT_TRUE(rf.contains("a"));
  EXPECT_EQ(rf.get("a").size(), 8u);
  EXPECT_THROW(rf.create("a", 4), std::invalid_argument);
  EXPECT_THROW(rf.get("b"), std::out_of_range);
}

TEST(Table, ExactMatchHitAndMiss) {
  MatchActionTable t("t", {{FieldId::kUdpDport, MatchKind::kExact}}, 16);
  bool hit = false;
  t.add_entry({{KeyMatch{.value = 80}}, 0, "a", [&](ActionContext&) { hit = true; }});
  Phv phv = parse_udp(10, 80);
  RegisterFile rf;
  sim::Rng rng;
  ActionContext ctx{phv, rf, rng, 0, nullptr};
  EXPECT_TRUE(t.apply(ctx));
  EXPECT_TRUE(hit);
  Phv miss_phv = parse_udp(10, 81);
  ActionContext miss_ctx{miss_phv, rf, rng, 0, nullptr};
  EXPECT_FALSE(t.apply(miss_ctx));
  EXPECT_EQ(t.hits(), 1u);
  EXPECT_EQ(t.misses(), 1u);
}

TEST(Table, DefaultActionRunsOnMiss) {
  MatchActionTable t("t", {{FieldId::kUdpDport, MatchKind::kExact}}, 4);
  bool fallback = false;
  t.set_default("d", [&](ActionContext&) { fallback = true; });
  Phv phv = parse_udp();
  RegisterFile rf;
  sim::Rng rng;
  ActionContext ctx{phv, rf, rng, 0, nullptr};
  EXPECT_FALSE(t.apply(ctx));
  EXPECT_TRUE(fallback);
}

TEST(Table, TernaryPriority) {
  MatchActionTable t("t", {{FieldId::kIpv4Dip, MatchKind::kTernary}}, 8);
  int which = 0;
  t.add_entry({{KeyMatch{.value = 0x0A000000, .mask = 0xFF000000}},
               1,
               "low",
               [&](ActionContext&) { which = 1; }});
  t.add_entry({{KeyMatch{.value = 0x0A0B0000, .mask = 0xFFFF0000}},
               2,
               "high",
               [&](ActionContext&) { which = 2; }});
  auto pkt = net::make_packet(net::make_udp_packet(1, 0x0A0B0C0D, 1, 2, 64));
  Phv phv = Parser::default_graph().parse(pkt);
  RegisterFile rf;
  sim::Rng rng;
  ActionContext ctx{phv, rf, rng, 0, nullptr};
  EXPECT_TRUE(t.apply(ctx));
  EXPECT_EQ(which, 2);  // longer prefix has higher priority
}

TEST(Table, RangeMatch) {
  MatchActionTable t("t", {{FieldId::kUdpDport, MatchKind::kRange}}, 8);
  bool hit = false;
  t.add_entry({{KeyMatch{.value = 100, .high = 200}}, 0, "r", [&](ActionContext&) { hit = true; }});
  Phv in_range = parse_udp(1, 150);
  Phv below = parse_udp(1, 99);
  Phv above = parse_udp(1, 201);
  RegisterFile rf;
  sim::Rng rng;
  ActionContext c1{in_range, rf, rng, 0, nullptr};
  ActionContext c2{below, rf, rng, 0, nullptr};
  ActionContext c3{above, rf, rng, 0, nullptr};
  EXPECT_TRUE(t.apply(c1));
  EXPECT_FALSE(t.apply(c2));
  EXPECT_FALSE(t.apply(c3));
  EXPECT_TRUE(hit);
}

TEST(Table, LpmLongestPrefixWins) {
  MatchActionTable t("routes", {{FieldId::kIpv4Dip, MatchKind::kLpm}}, 8);
  int which = 0;
  t.add_entry({{lpm_match(0x0A000000, 8, 32)}, 0, "slash8", [&](ActionContext&) { which = 8; }});
  t.add_entry({{lpm_match(0x0A0B0000, 16, 32)}, 0, "slash16",
               [&](ActionContext&) { which = 16; }});
  t.add_entry({{lpm_match(0x0A0B0C00, 24, 32)}, 0, "slash24",
               [&](ActionContext&) { which = 24; }});
  RegisterFile rf;
  sim::Rng rng;
  const auto lookup = [&](std::uint32_t dip) {
    auto pkt = net::make_packet(net::make_udp_packet(1, dip, 1, 2, 64));
    Phv phv = Parser::default_graph().parse(pkt);
    ActionContext ctx{phv, rf, rng, 0, nullptr};
    which = 0;
    t.apply(ctx);
    return which;
  };
  EXPECT_EQ(lookup(0x0A0B0C0D), 24);  // most specific
  EXPECT_EQ(lookup(0x0A0B0F01), 16);
  EXPECT_EQ(lookup(0x0AFF0001), 8);
  EXPECT_EQ(lookup(0x0B000001), 0);  // miss
}

TEST(Table, LpmDefaultRouteMatchesEverything) {
  MatchActionTable t("routes", {{FieldId::kIpv4Dip, MatchKind::kLpm}}, 4);
  bool hit = false;
  t.add_entry({{lpm_match(0, 0, 32)}, 0, "default", [&](ActionContext&) { hit = true; }});
  auto pkt = net::make_packet(net::make_udp_packet(1, 0xDEADBEEF, 1, 2, 64));
  Phv phv = Parser::default_graph().parse(pkt);
  RegisterFile rf;
  sim::Rng rng;
  ActionContext ctx{phv, rf, rng, 0, nullptr};
  EXPECT_TRUE(t.apply(ctx));
  EXPECT_TRUE(hit);
}

TEST(Mcast, GroupTableConfigureAndRemove) {
  McastGroupTable mc;
  EXPECT_FALSE(mc.contains(3));
  EXPECT_THROW(mc.members(3), std::out_of_range);
  mc.configure(3, {{1, 1}, {2, 2}});
  EXPECT_TRUE(mc.contains(3));
  EXPECT_EQ(mc.members(3).size(), 2u);
  mc.configure(3, {{5, 1}});  // reconfigure replaces
  EXPECT_EQ(mc.members(3).size(), 1u);
  EXPECT_EQ(mc.members(3)[0].port, 5);
  mc.remove(3);
  EXPECT_FALSE(mc.contains(3));
}

TEST(Asic, ResetProgramClearsPipelines) {
  sim::EventQueue ev;
  rmt::SwitchAsic asic(ev, rmt::AsicConfig{.num_ports = 2});
  asic.ingress().add_table("a", {}, 4);
  asic.egress().add_table("b", {}, 4);
  EXPECT_EQ(asic.ingress().table_count(), 1u);
  asic.reset_program();
  EXPECT_EQ(asic.ingress().table_count(), 0u);
  EXPECT_EQ(asic.egress().table_count(), 0u);
}

TEST(Timing, ModelInvariants) {
  const TimingModel tm;
  // RTT grows monotonically with size; capacity shrinks.
  double prev_rtt = 0;
  std::uint64_t prev_cap = ~0ull;
  for (const std::size_t s : {64u, 128u, 512u, 1500u}) {
    EXPECT_GT(tm.recirc_rtt_ns(s), prev_rtt);
    EXPECT_LE(tm.accelerator_capacity(s), prev_cap);
    prev_rtt = tm.recirc_rtt_ns(s);
    prev_cap = tm.accelerator_capacity(s);
  }
  // The firing path is slower than the idle loop (mcast vs unicast TM).
  EXPECT_GT(tm.firing_rtt_ns(64), tm.recirc_rtt_ns(64));
  EXPECT_GT(tm.loop_fill_target(64), tm.accelerator_capacity(64));
  // Mcast delay interpolates Fig 15a's endpoints.
  EXPECT_NEAR(tm.mcast_delay_ns(64), 389.0, 0.1);
  EXPECT_NEAR(tm.mcast_delay_ns(1280), 454.0, 0.5);
}

TEST(Table, CapacityAndDuplicateEnforced) {
  MatchActionTable t("t", {{FieldId::kUdpDport, MatchKind::kExact}}, 1);
  t.add_entry({{KeyMatch{.value = 1}}, 0, "a", nullptr});
  EXPECT_THROW(t.add_entry({{KeyMatch{.value = 2}}, 0, "b", nullptr}), std::length_error);
  MatchActionTable t2("t2", {{FieldId::kUdpDport, MatchKind::kExact}}, 8);
  t2.add_entry({{KeyMatch{.value = 1}}, 0, "a", nullptr});
  EXPECT_THROW(t2.add_entry({{KeyMatch{.value = 1}}, 0, "b", nullptr}), std::invalid_argument);
}

TEST(Pipeline, GatewaySkipsTable) {
  Pipeline p("ingress", 12);
  int runs = 0;
  auto& t = p.add_table("t", {}, 4, [](const Phv& phv) {
    return phv.get(FieldId::kUdpDport) == 80;
  });
  t.set_default("count", [&](ActionContext&) { ++runs; });
  Phv yes = parse_udp(1, 80);
  Phv no = parse_udp(1, 81);
  RegisterFile rf;
  sim::Rng rng;
  ActionContext cy{yes, rf, rng, 0, nullptr};
  ActionContext cn{no, rf, rng, 0, nullptr};
  p.apply(cy);
  p.apply(cn);
  EXPECT_EQ(runs, 1);
}

TEST(Pipeline, PlacementRejectsOversizedPrograms) {
  Pipeline p("ingress", 3);
  for (int i = 0; i < 3; ++i) p.add_table("t" + std::to_string(i), {}, 4);
  EXPECT_TRUE(p.place());
  EXPECT_EQ(p.stages_used(), 3);
  p.add_table("overflow", {}, 4);
  EXPECT_FALSE(p.place());
}

TEST(Resources, NormalizationAgainstSwitchP4) {
  ResourceUsage u;
  u.sram_kb = switch_p4_baseline().sram_kb / 10.0;
  const NormalizedUsage n = normalize(u);
  EXPECT_NEAR(n.sram_pct, 10.0, 1e-9);
  EXPECT_EQ(n.tcam_pct, 0.0);
}

TEST(Resources, AccountantAggregates) {
  ResourceAccountant acc;
  acc.add("a", {.sram_kb = 1.0});
  acc.add("a", {.sram_kb = 2.0});
  acc.add("b", {.tcam_kb = 3.0});
  EXPECT_DOUBLE_EQ(acc.component("a").sram_kb, 3.0);
  EXPECT_DOUBLE_EQ(acc.total().tcam_kb, 3.0);
}

// --- full-ASIC flows -------------------------------------------------------

TEST(Asic, UnicastForwardsWithPipelineLatency) {
  test::AsicTestbed tb(rmt::AsicConfig{.num_ports = 4, .port_rate_gbps = 100.0});
  // Program: everything arriving on port 0 goes out port 1.
  auto& t = tb.asic.ingress().add_table("fwd", {}, 4);
  t.set_default("fwd", [](ActionContext& ctx) {
    ctx.phv.intrinsic().dest = Destination::kUnicast;
    ctx.phv.intrinsic().ucast_port = 1;
  });
  tb.sinks[0]->port.send(net::make_packet(net::make_udp_packet(1, 2, 3, 4, 64)));
  tb.ev.run_until(sim::us(100));
  ASSERT_EQ(tb.sinks[1]->packets.size(), 1u);
  EXPECT_EQ(tb.asic.ingress_packets(), 1u);
  EXPECT_EQ(tb.asic.egress_packets(), 1u);
  // Latency through the box: serialization + ingress + TM + egress + out.
  EXPECT_GT(tb.sinks[1]->arrival_times[0], 300u);
}

TEST(Asic, DropByDefault) {
  test::AsicTestbed tb(rmt::AsicConfig{.num_ports = 2});
  tb.sinks[0]->port.send(net::make_packet(net::make_udp_packet(1, 2, 3, 4, 64)));
  tb.ev.run_until(sim::us(10));
  EXPECT_EQ(tb.asic.dropped_packets(), 1u);
  EXPECT_TRUE(tb.sinks[1]->packets.empty());
}

TEST(Asic, MulticastReplicatesToMembers) {
  test::AsicTestbed tb(rmt::AsicConfig{.num_ports = 4});
  tb.asic.mcast().configure(7, {{1, 1}, {2, 2}, {3, 3}});
  auto& t = tb.asic.ingress().add_table("mc", {}, 4);
  t.set_default("mc", [](ActionContext& ctx) {
    ctx.phv.intrinsic().dest = Destination::kMulticast;
    ctx.phv.intrinsic().mcast_group = 7;
  });
  tb.sinks[0]->port.send(net::make_packet(net::make_udp_packet(1, 2, 3, 4, 64)));
  tb.ev.run_until(sim::us(100));
  EXPECT_EQ(tb.sinks[1]->packets.size(), 1u);
  EXPECT_EQ(tb.sinks[2]->packets.size(), 1u);
  EXPECT_EQ(tb.sinks[3]->packets.size(), 1u);
  EXPECT_EQ(tb.asic.replicas_created(), 3u);
  // Replicas are independent copies.
  EXPECT_NE(tb.sinks[1]->packets[0].get(), tb.sinks[2]->packets[0].get());
}

TEST(Asic, McastDelayMatchesCalibration) {
  // Fig 15a: ~389ns mcast delay for 64B with RMSE < 4.5ns.
  test::AsicTestbed tb(rmt::AsicConfig{.num_ports = 2});
  tb.asic.mcast().configure(1, {{1, 1}});
  auto& t = tb.asic.ingress().add_table("mc", {}, 4);
  t.set_default("mc", [](ActionContext& ctx) {
    ctx.phv.intrinsic().dest = Destination::kMulticast;
    ctx.phv.intrinsic().mcast_group = 1;
  });
  const auto& tm = tb.asic.timing();
  EXPECT_NEAR(tm.mcast_delay_ns(64), 389.0, 0.5);
  EXPECT_NEAR(tm.mcast_delay_ns(1280), 454.0, 1.0);
}

TEST(Asic, RecirculationLoopRttMatchesFig14) {
  sim::EventQueue ev;
  rmt::SwitchAsic asic(ev, rmt::AsicConfig{.num_ports = 2});
  // Count loop arrivals of the template packet.
  std::vector<sim::TimeNs> arrivals;
  auto& t = asic.ingress().add_table("loop", {}, 4);
  t.set_default("loop", [&](ActionContext& ctx) {
    if (ctx.phv.get(net::FieldId::kMetaIngressPort) != rmt::SwitchAsic::kCpuPort) {
      arrivals.push_back(ctx.now);
    }
    ctx.phv.intrinsic().dest = Destination::kUnicast;
    ctx.phv.intrinsic().ucast_port = rmt::SwitchAsic::kRecircPortBase;
  });
  auto pkt = net::make_packet(net::make_udp_packet(1, 2, 3, 4, 64));
  asic.inject_from_cpu(pkt);
  ev.run_until(sim::ms(1));
  ASSERT_GT(arrivals.size(), 1000u);
  const auto deltas = sim::inter_departure_times(
      std::vector<std::uint64_t>(arrivals.begin(), arrivals.end()));
  const auto m = sim::compute_error_metrics(deltas, asic.timing().recirc_rtt_ns(64));
  // Mean RTT ~570ns (Fig 14a), jitter RMSE below 5ns.
  EXPECT_NEAR(asic.timing().recirc_rtt_ns(64), 570.0, 2.0);
  EXPECT_LT(m.rmse, 5.0);
  EXPECT_LT(m.mae, 5.0);
}

TEST(Asic, AcceleratorCapacityMatchesFig14b) {
  const TimingModel tm;
  EXPECT_EQ(tm.accelerator_capacity(64), 89u);
  EXPECT_NEAR(tm.min_arrival_interval_ns(64), 6.4, 1e-9);
  // Capacity shrinks as template packets grow (Fig 14b shape).
  EXPECT_LT(tm.accelerator_capacity(1500), tm.accelerator_capacity(64));
}

TEST(Asic, CpuPuntAndInjection) {
  sim::EventQueue ev;
  rmt::SwitchAsic asic(ev, rmt::AsicConfig{.num_ports = 2});
  auto& t = asic.ingress().add_table("tocpu", {}, 4);
  t.set_default("tocpu", [](ActionContext& ctx) {
    ctx.phv.intrinsic().dest = Destination::kUnicast;
    ctx.phv.intrinsic().ucast_port = rmt::SwitchAsic::kCpuPort;
  });
  net::PacketPtr punted;
  asic.set_cpu_punt([&](net::PacketPtr p) { punted = std::move(p); });
  asic.inject_from_cpu(net::make_packet(net::make_udp_packet(1, 2, 3, 4, 64)));
  ev.run_until(sim::us(100));
  ASSERT_TRUE(punted);
  EXPECT_EQ(punted->meta().ingress_port, rmt::SwitchAsic::kCpuPort);
}

TEST(Asic, DigestEngineDeliversInOrderWithServiceTime) {
  sim::EventQueue ev;
  rmt::SwitchAsic asic(ev, rmt::AsicConfig{.num_ports = 2});
  std::vector<std::uint32_t> types;
  asic.digests().set_receiver([&](const DigestMessage& m) { types.push_back(m.type); });
  asic.digests().emit({.type = 1, .values = {42}, .byte_size = 16});
  asic.digests().emit({.type = 2, .values = {43}, .byte_size = 16});
  ev.run_until(sim::seconds(1));
  EXPECT_EQ(types, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(asic.digests().delivered(), 2u);
}

TEST(Asic, EgressRewritesAndChecksumsFixed) {
  test::AsicTestbed tb(rmt::AsicConfig{.num_ports = 2});
  auto& ti = tb.asic.ingress().add_table("fwd", {}, 4);
  ti.set_default("fwd", [](ActionContext& ctx) {
    ctx.phv.intrinsic().dest = Destination::kUnicast;
    ctx.phv.intrinsic().ucast_port = 1;
  });
  auto& te = tb.asic.egress().add_table("rewrite", {}, 4);
  te.set_default("rewrite", [](ActionContext& ctx) {
    ctx.phv.set(FieldId::kUdpDport, 5555);
  });
  tb.sinks[0]->port.send(net::make_packet(net::make_udp_packet(1, 2, 3, 4, 64)));
  tb.ev.run_until(sim::us(100));
  ASSERT_EQ(tb.sinks[1]->packets.size(), 1u);
  const auto& pkt = *tb.sinks[1]->packets[0];
  EXPECT_EQ(net::get_field(pkt, FieldId::kUdpDport), 5555u);
  EXPECT_TRUE(net::verify_checksums(pkt));
}

}  // namespace
}  // namespace ht::rmt
