#include "net/headers.hpp"

#include <stdexcept>

#include "net/bytes.hpp"
#include "net/checksum.hpp"

namespace ht::net {

std::optional<std::size_t> header_base_offset(HeaderKind header) {
  switch (header) {
    case HeaderKind::kEthernet:
      return 0;
    case HeaderKind::kIpv4:
      return kEthernetBytes;
    case HeaderKind::kTcp:
    case HeaderKind::kUdp:
    case HeaderKind::kIcmp:
    case HeaderKind::kNvp:
      return kEthernetBytes + kIpv4Bytes;
    case HeaderKind::kNone:
      return std::nullopt;
  }
  return std::nullopt;
}

std::size_t min_packet_size(HeaderKind l4) {
  const std::size_t l3 = kEthernetBytes + kIpv4Bytes;
  switch (l4) {
    case HeaderKind::kTcp:
      return l3 + kTcpBytes;
    case HeaderKind::kUdp:
      return l3 + kUdpBytes;
    case HeaderKind::kIcmp:
      return l3 + kIcmpBytes;
    case HeaderKind::kNvp:
      return l3 + kNvpBytes;
    default:
      return l3;
  }
}

namespace {

/// Wire position of a field in the canonical stack, flattened into one
/// table so the per-packet helpers (get_field/set_field drive the checksum
/// engine on every egressing packet) cost an array index instead of two
/// registry round-trips. bit < 0 marks fields with no wire home.
struct WirePos {
  std::int32_t bit = -1;  ///< absolute bit offset from the packet start
  std::uint16_t width = 0;
};

const std::array<WirePos, kFieldCount>& wire_table() {
  static const std::array<WirePos, kFieldCount> table = [] {
    std::array<WirePos, kFieldCount> t{};
    const auto& reg = FieldRegistry::instance();
    for (std::size_t i = 0; i < kFieldCount; ++i) {
      const auto& fi = reg.info(static_cast<FieldId>(i));
      if (const auto base = header_base_offset(fi.header)) {
        t[i].bit = static_cast<std::int32_t>(*base * 8 + fi.bit_offset);
        t[i].width = fi.bit_width;
      }
    }
    return t;
  }();
  return table;
}

// Absolute bit position of a wire field in the canonical stack.
std::size_t absolute_bit_offset(FieldId id) {
  const WirePos& wp = wire_table()[static_cast<std::size_t>(id)];
  if (wp.bit < 0) {
    throw std::invalid_argument("field has no wire position: " + std::string(field_name(id)));
  }
  return static_cast<std::size_t>(wp.bit);
}

}  // namespace

std::uint64_t get_field(const Packet& pkt, FieldId id) {
  const std::size_t bit = absolute_bit_offset(id);
  const std::size_t width = wire_table()[static_cast<std::size_t>(id)].width;
  if ((bit + width + 7) / 8 > pkt.size()) {
    throw std::out_of_range("packet too short for field " + std::string(field_name(id)));
  }
  return read_bits(pkt.bytes(), bit, width);
}

void set_field(Packet& pkt, FieldId id, std::uint64_t value) {
  const std::size_t bit = absolute_bit_offset(id);
  const std::size_t width = wire_table()[static_cast<std::size_t>(id)].width;
  if ((bit + width + 7) / 8 > pkt.size()) {
    throw std::out_of_range("packet too short for field " + std::string(field_name(id)));
  }
  write_bits(pkt.bytes(), bit, width, value & low_mask(width));
}

bool has_field(const Packet& pkt, FieldId id) {
  const WirePos& wp = wire_table()[static_cast<std::size_t>(id)];
  if (wp.bit < 0) return false;
  const std::size_t end_bit = static_cast<std::size_t>(wp.bit) + wp.width;
  return (end_bit + 7) / 8 <= pkt.size();
}

std::optional<HeaderKind> l4_kind(const Packet& pkt) {
  if (pkt.size() < kEthernetBytes + kIpv4Bytes) return std::nullopt;
  if (get_field(pkt, FieldId::kEthType) != ethertype::kIpv4) return std::nullopt;
  switch (get_field(pkt, FieldId::kIpv4Proto)) {
    case ipproto::kTcp:
      return HeaderKind::kTcp;
    case ipproto::kUdp:
      return HeaderKind::kUdp;
    case ipproto::kIcmp:
      return HeaderKind::kIcmp;
    case ipproto::kNvp:
      return HeaderKind::kNvp;
    default:
      return std::nullopt;
  }
}

namespace {

std::uint16_t compute_l4_checksum(const Packet& pkt, HeaderKind l4) {
  const std::size_t l4_off = kEthernetBytes + kIpv4Bytes;
  const std::size_t l4_len = pkt.size() - l4_off;
  ChecksumAccumulator acc;
  if (l4 != HeaderKind::kIcmp) {
    add_ipv4_pseudo_header(acc, static_cast<std::uint32_t>(get_field(pkt, FieldId::kIpv4Sip)),
                           static_cast<std::uint32_t>(get_field(pkt, FieldId::kIpv4Dip)),
                           static_cast<std::uint8_t>(get_field(pkt, FieldId::kIpv4Proto)),
                           static_cast<std::uint16_t>(l4_len));
  }
  // Sum the L4 header+payload with the checksum field itself zeroed.
  const FieldId csum_field = l4 == HeaderKind::kTcp   ? FieldId::kTcpChecksum
                             : l4 == HeaderKind::kUdp ? FieldId::kUdpChecksum
                                                      : FieldId::kIcmpChecksum;
  const std::size_t csum_off =
      static_cast<std::size_t>(wire_table()[static_cast<std::size_t>(csum_field)].bit) / 8;
  auto bytes = pkt.bytes();
  acc.add(bytes.subspan(l4_off, csum_off - l4_off));
  acc.add_word(0);
  acc.add(bytes.subspan(csum_off + 2));
  return acc.finish();
}

}  // namespace

void fix_checksums(Packet& pkt) {
  if (pkt.size() < kEthernetBytes + kIpv4Bytes) return;
  if (get_field(pkt, FieldId::kEthType) != ethertype::kIpv4) return;

  // IPv4 header checksum.
  set_field(pkt, FieldId::kIpv4Checksum, 0);
  const auto ipv4 = pkt.bytes().subspan(kEthernetBytes, kIpv4Bytes);
  set_field(pkt, FieldId::kIpv4Checksum, internet_checksum(ipv4));

  const auto l4 = l4_kind(pkt);
  if (!l4 || *l4 == HeaderKind::kNvp) return;  // NVP carries no checksum
  if (pkt.size() < min_packet_size(*l4)) return;
  const FieldId csum_field = *l4 == HeaderKind::kTcp   ? FieldId::kTcpChecksum
                             : *l4 == HeaderKind::kUdp ? FieldId::kUdpChecksum
                                                       : FieldId::kIcmpChecksum;
  if (*l4 == HeaderKind::kUdp && get_field(pkt, FieldId::kUdpChecksum) == 0) {
    return;  // UDP checksum is optional; zero means "not used".
  }
  set_field(pkt, csum_field, 0);
  std::uint16_t csum = compute_l4_checksum(pkt, *l4);
  if (*l4 == HeaderKind::kUdp && csum == 0) csum = 0xffff;  // RFC 768
  set_field(pkt, csum_field, csum);
}

bool verify_checksums(const Packet& pkt) {
  if (pkt.size() < kEthernetBytes + kIpv4Bytes) return true;
  if (get_field(pkt, FieldId::kEthType) != ethertype::kIpv4) return true;
  if (internet_checksum(pkt.bytes().subspan(kEthernetBytes, kIpv4Bytes)) != 0) return false;
  const auto l4 = l4_kind(pkt);
  if (!l4 || *l4 == HeaderKind::kNvp || pkt.size() < min_packet_size(*l4)) return true;
  if (*l4 == HeaderKind::kUdp && get_field(pkt, FieldId::kUdpChecksum) == 0) return true;
  const FieldId csum_field = *l4 == HeaderKind::kTcp   ? FieldId::kTcpChecksum
                             : *l4 == HeaderKind::kUdp ? FieldId::kUdpChecksum
                                                       : FieldId::kIcmpChecksum;
  const std::uint16_t stored = static_cast<std::uint16_t>(get_field(pkt, csum_field));
  Packet copy(std::vector<std::uint8_t>(pkt.bytes().begin(), pkt.bytes().end()));
  set_field(copy, csum_field, 0);
  std::uint16_t computed = compute_l4_checksum(copy, *l4);
  if (*l4 == HeaderKind::kUdp && computed == 0) computed = 0xffff;
  return stored == computed;
}

}  // namespace ht::net
