// Register FIFO (§6.1 of the paper).
//
// HyperTester needs FIFOs twice: the KV FIFO of the cuckoo counter store
// (§5.2) and the trigger FIFO between HTPR and HTPS (§5.3). Switching ASIC
// has no queue primitive, so the paper builds one from register arrays:
//  - a 32-bit *front* counter and a 32-bit *rear* counter, each supporting
//    `read` (returns value) and `update` (increments and returns the new
//    value), where the rear update is conditioned on the front value so
//    dequeues can never underflow;
//  - one storage register array per record lane.
//
// The paper notes the implementation cannot guarantee freedom from
// overflow; we reproduce that behaviour faithfully — an enqueue beyond
// capacity is dropped and counted, exactly what the hardware would do.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "rmt/registers.hpp"

namespace ht::regfifo {

/// A fixed-capacity FIFO of fixed-arity records built on RegisterArrays.
class RegisterFifo {
 public:
  /// Creates `lanes` storage arrays plus front/rear counters inside `rf`,
  /// all named under `name`. Capacity must be a power of two (hardware
  /// index masking).
  RegisterFifo(rmt::RegisterFile& rf, const std::string& name, std::size_t capacity,
               std::size_t lanes);

  std::size_t capacity() const { return capacity_; }
  std::size_t lanes() const { return lanes_; }
  const std::string& name() const { return name_; }

  /// Occupancy derived from the two counters (front <= rear always holds).
  std::size_t size() const;
  bool empty() const { return size() == 0; }
  bool full() const { return size() >= capacity_; }

  /// Enqueue one record (`record.size() == lanes`). Returns false and
  /// counts an overflow when the queue is full — the §6.1 limitation.
  bool enqueue(const std::vector<std::uint64_t>& record);

  /// Dequeue; nullopt when empty (underflow-free by construction: the
  /// front update is gated on front < rear).
  std::optional<std::vector<std::uint64_t>> dequeue();

  /// Control-plane view of the queued records, front to back (the CPU can
  /// always read the underlying registers).
  std::vector<std::vector<std::uint64_t>> snapshot() const;

  std::uint64_t enqueued() const { return enqueued_; }
  std::uint64_t dequeued() const { return dequeued_; }
  std::uint64_t overflows() const { return overflows_; }
  std::uint64_t injected_overflows() const { return injected_overflows_; }

  /// Overflow observer: invoked (with the dropped record) every time an
  /// enqueue is rejected — the stateless-connection layer uses this so a
  /// burst (e.g. a SYN+ACK storm overrunning the trigger FIFO) is
  /// reported, never silently swallowed.
  std::function<void(const std::vector<std::uint64_t>&)> on_overflow;

  /// Debug tripwire: when set, an overflow asserts in debug builds (the
  /// record is still counted and dropped in release builds). For suites
  /// that consider any overflow a bug, not a statistic.
  void set_assert_on_overflow(bool v) { assert_on_overflow_ = v; }

  /// Fault injection (sim/fault.hpp layer): when the hook returns true
  /// the enqueue behaves as if the queue were full — the §6.1 overflow
  /// path can then be exercised deterministically regardless of actual
  /// occupancy. Counted separately in `injected_overflows`.
  void set_overflow_injection(std::function<bool()> fn) { inject_overflow_ = std::move(fn); }

 private:
  bool reject(const std::vector<std::uint64_t>& record, bool injected);

  std::string name_;
  std::size_t capacity_;
  std::size_t lanes_;
  rmt::RegisterArray* front_;
  rmt::RegisterArray* rear_;
  std::vector<rmt::RegisterArray*> storage_;
  std::function<bool()> inject_overflow_;
  bool assert_on_overflow_ = false;
  std::uint64_t enqueued_ = 0;
  std::uint64_t dequeued_ = 0;
  std::uint64_t overflows_ = 0;
  std::uint64_t injected_overflows_ = 0;
};

}  // namespace ht::regfifo
