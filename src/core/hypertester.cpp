#include "core/hypertester.hpp"

#include <stdexcept>

namespace ht {

HyperTester::HyperTester(TesterConfig cfg)
    : asic_(ev_, cfg.asic), controller_(asic_) {}

void HyperTester::load(const ntapi::Task& task) {
  if (compiled_) throw std::logic_error("HyperTester: a task is already loaded");
  ntapi::Compiler compiler(asic_.config());
  compiled_ = compiler.compile(task);

  sender_ = std::make_unique<htps::Sender>(asic_);
  receiver_ = std::make_unique<htpr::Receiver>(asic_);

  // Trigger FIFOs for stateless connections: create them first so both
  // sides can be wired.
  std::map<std::size_t, stateless::TriggerFifo*> fifo_of_trigger;
  std::map<std::size_t, std::vector<stateless::TriggerFifo*>> fifos_of_query;
  for (const auto& wiring : compiled_->fifos) {
    fifos_.push_back(std::make_unique<stateless::TriggerFifo>(
        asic_.registers(), "trigfifo." + std::to_string(wiring.trigger_index), wiring.lanes));
    fifo_of_trigger[wiring.trigger_index] = fifos_.back().get();
    fifos_of_query[wiring.query_index].push_back(fifos_.back().get());
  }

  // HTPS: install templates (editor EditOps already reference lane
  // indexes computed by the compiler).
  for (std::size_t t = 0; t < compiled_->templates.size(); ++t) {
    htps::TemplateConfig cfg = compiled_->templates[t];
    const auto it = fifo_of_trigger.find(t);
    if (it != fifo_of_trigger.end()) cfg.trigger_fifo = &it->second->fifo();
    sender_->add_template(std::move(cfg));
  }
  sender_->install();

  // HTPR: install queries; attach trigger extraction where wired.
  for (std::size_t q = 0; q < compiled_->queries.size(); ++q) {
    htpr::QueryConfig cfg = compiled_->queries[q].config;
    const auto it = fifos_of_query.find(q);
    if (it != fifos_of_query.end()) {
      for (auto* fifo : it->second) cfg.triggers.push_back(fifo->extract_spec());
    }
    receiver_->add_query(std::move(cfg));
  }
  receiver_->install();

  // Exact-key-matching entries + CPU-side eviction collection.
  for (std::size_t q = 0; q < compiled_->queries.size(); ++q) {
    const auto& cq = compiled_->queries[q];
    if (auto* store = receiver_->store(q)) {
      store->install_exact_entries(cq.exact_keys);
      const std::uint32_t type = cq.config.store.eviction_digest_type;
      controller_.subscribe(type, [this, type](const rmt::DigestMessage& msg) {
        if (msg.values.size() >= 2) evicted_[type][msg.values[0]] += msg.values[1];
      });
    }
  }

  // Feasibility: the program must fit the physical stages (§6.1).
  if (!asic_.ingress().place() || !asic_.egress().place()) {
    throw std::runtime_error(
        "task rejected: pipeline program does not fit the switching ASIC stages");
  }
}

void HyperTester::start() {
  if (!sender_) throw std::logic_error("HyperTester: no task loaded");
  sender_->start();
}

std::uint64_t HyperTester::query_total(ntapi::QueryHandle q) const {
  return receiver_->keyless_total(q.index);
}

std::uint64_t HyperTester::query_matched(ntapi::QueryHandle q) const {
  return receiver_->matched(q.index);
}

std::uint64_t HyperTester::query_distinct(ntapi::QueryHandle q) const {
  const auto* store = receiver_->store(q.index);
  if (store == nullptr) throw std::logic_error("query_distinct on a keyless query");
  const auto type = compiled_->queries[q.index].config.store.eviction_digest_type;
  const auto it = evicted_.find(type);
  return store->distinct_count(it == evicted_.end() ? empty_evictions_ : it->second);
}

std::uint64_t HyperTester::query_value(ntapi::QueryHandle q,
                                       const std::vector<std::uint64_t>& key) const {
  const auto* store = receiver_->store(q.index);
  if (store == nullptr) throw std::logic_error("query_value on a keyless query");
  const auto type = compiled_->queries[q.index].config.store.eviction_digest_type;
  const auto it = evicted_.find(type);
  return store->total_for_key(key, it == evicted_.end() ? empty_evictions_ : it->second);
}

std::uint64_t HyperTester::trigger_fires(ntapi::TriggerHandle t) const {
  return sender_->fires(static_cast<std::uint32_t>(t.index));
}

bool HyperTester::trigger_done(ntapi::TriggerHandle t) const {
  return sender_->done(static_cast<std::uint32_t>(t.index));
}

}  // namespace ht
