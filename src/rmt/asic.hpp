// SwitchAsic: the full switching-ASIC model.
//
// One instance is one Tofino-class device: front-panel ports, a
// programmable parser, ingress and egress match-action pipelines, a
// traffic manager with multicast engine, recirculation channels, a digest
// engine toward the switch CPU, register state, and resource accounting.
//
// Packet life cycle (all latencies from TimingModel):
//   port RX -> parse -> ingress pipeline -> [ingress_latency] ->
//   traffic manager (drop | unicast | mcast replicate) -> [tm delay] ->
//   parse -> egress pipeline -> deparse+checksums -> [egress_latency] ->
//   port TX | recirculation loop | CPU punt
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "rmt/digest.hpp"
#include "rmt/hashing.hpp"
#include "rmt/mcast.hpp"
#include "rmt/parser.hpp"
#include "rmt/pipeline.hpp"
#include "rmt/registers.hpp"
#include "rmt/resources.hpp"
#include "rmt/timing.hpp"
#include "sim/event_queue.hpp"
#include "sim/port.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "telemetry/telemetry.hpp"

namespace ht::rmt {

class FastPathHooks;

struct AsicConfig {
  std::size_t num_ports = 32;
  double port_rate_gbps = 100.0;
  std::size_t num_recirc_channels = 1;
  int max_stages = 12;
  TimingModel timing;
  std::uint64_t seed = 1;
  DigestEngine::Config digest;
};

class SwitchAsic {
 public:
  /// Port-id space: front-panel ports are [0, num_ports); recirculation
  /// channels and the CPU port live high in the id space.
  static constexpr std::uint16_t kRecircPortBase = 0xF000;
  static constexpr std::uint16_t kCpuPort = 0xFFF0;

  SwitchAsic(sim::EventQueue& ev, AsicConfig cfg);

  // --- ports ---------------------------------------------------------------
  sim::Port& port(std::uint16_t i);
  std::size_t port_count() const { return ports_.size(); }
  bool is_recirc_port(std::uint16_t p) const {
    return p >= kRecircPortBase && p < kRecircPortBase + recirc_.size();
  }
  /// Admin gate over every recirculation channel (crash modeling,
  /// DESIGN.md §14): while down, a packet emitted to a recirc port is
  /// counted in recirc_admin_drops() and discarded, which kills the
  /// tester's self-sustaining loops the way process death would.
  void set_recirc_admin(bool up) { recirc_admin_up_ = up; }
  bool recirc_admin_up() const { return recirc_admin_up_; }
  std::uint64_t recirc_admin_drops() const { return recirc_admin_drops_; }
  std::size_t recirc_channel_count() const { return recirc_.size(); }
  double recirc_busy_until(std::size_t c) const { return recirc_[c].busy_until; }
  std::uint64_t recirc_loops(std::size_t c) const { return recirc_[c].loops; }

  // --- programmable blocks ---------------------------------------------------
  void set_parser(Parser p) { parser_ = std::move(p); }
  const Parser& parser() const { return parser_; }
  Pipeline& ingress() { return ingress_; }
  Pipeline& egress() { return egress_; }
  RegisterFile& registers() { return registers_; }
  DigestEngine& digests() { return digests_; }
  McastGroupTable& mcast() { return mcast_; }
  ResourceAccountant& resources() { return resources_; }
  sim::Rng& rng() { return rng_; }
  sim::EventQueue& events() { return ev_; }
  const TimingModel& timing() const { return cfg_.timing; }
  const AsicConfig& config() const { return cfg_; }

  /// Switch-CPU packet injection (template packets arrive over PCIe).
  void inject_from_cpu(net::PacketPtr pkt);
  /// Handler for packets the pipeline directs to the CPU port.
  void set_cpu_punt(std::function<void(net::PacketPtr)> fn) { cpu_punt_ = std::move(fn); }

  /// Drain all state installed by a previous task (pipelines, groups).
  void reset_program();

  /// Task-compiled fast path (src/rmt/fastpath/). When set, every pipeline
  /// pass is first offered to the hook; a false return runs the interpreted
  /// reference walk. Event scheduling, device counters, and trace spans
  /// stay in this class either way, so the fused path cannot perturb the
  /// deterministic event structure. Pass nullptr to detach.
  void set_fastpath(FastPathHooks* hooks) { fastpath_ = hooks; }
  FastPathHooks* fastpath() const { return fastpath_; }

  /// Build an ActionContext around `phv` at the current simulation time.
  /// Public for the fast-path engine, which drives interpreted table
  /// actions (e.g. the store-maintenance pass) from outside the pipelines.
  ActionContext make_ctx(Phv& phv);

  /// Fault-injection hook (sim/fault.hpp layer): called on every packet
  /// entering ingress; returning true drops it before the parser, counted
  /// in `injected_drops`. Models ASIC-internal overruns (parser buffer,
  /// ingress MAU stall) that are invisible to the wire-level injector.
  void set_ingress_fault(std::function<bool(const net::Packet&)> fn) {
    ingress_fault_ = std::move(fn);
  }

  // --- telemetry -------------------------------------------------------------
  /// The device-wide metrics registry. Every component attached to this
  /// ASIC (ports, pipelines, HTPS/HTPR programs, controller, chaos links)
  /// registers its counters/gauges/histograms here, so one registry is the
  /// single source of truth for the whole tester instance.
  telemetry::MetricsRegistry& metrics() { return metrics_; }
  const telemetry::MetricsRegistry& metrics() const { return metrics_; }
  /// Device trace recorder (Chrome trace_event export). Off by default;
  /// enable via trace().set_enabled(true) before running.
  telemetry::TraceRecorder& trace() { return trace_; }
  const telemetry::TraceRecorder& trace() const { return trace_; }

  // --- counters --------------------------------------------------------------
  // Thin compat accessors over the registry-backed cells: the registry is
  // the storage, these keep the historical API (and tests) intact.
  std::uint64_t ingress_packets() const { return ingress_packets_->value(); }
  std::uint64_t egress_packets() const { return egress_packets_->value(); }
  std::uint64_t dropped_packets() const { return dropped_->value(); }
  std::uint64_t recirculations() const { return recirculations_->value(); }
  std::uint64_t replicas_created() const { return replicas_->value(); }
  std::uint64_t injected_drops() const { return injected_drops_->value(); }

  /// Every drop/overflow path registered on the device registry in one flat
  /// report: pipeline drops, injected drops, digest-queue drops, per-port
  /// MAC counters (queue-full, no-peer, FCS), plus whatever attached
  /// components (HTPR integrity gates, chaos links, FIFOs) registered.
  /// Compat adapter over metrics().drop_counters().
  std::vector<sim::DropCounter> drop_counters() const;

 private:
  /// One multicast replica headed for egress.
  struct EgressReplica {
    net::PacketPtr pkt;
    std::uint16_t port = 0;
    std::uint16_t rid = 0;
  };
  using EgressBatch = std::vector<EgressReplica>;

  /// Replica waiting to be grouped by TM arrival tick (multicast fan-out).
  struct PendingReplica {
    sim::TimeNs tick = 0;
    net::PacketPtr pkt;
    std::uint16_t port = 0;
    std::uint16_t rid = 0;
  };

  void enter_ingress(net::PacketPtr pkt);
  void run_ingress(net::PacketPtr pkt);
  void to_traffic_manager(net::PacketPtr pkt, IntrinsicMeta im);
  void run_egress(net::PacketPtr pkt, std::uint16_t eport, std::uint16_t rid);
  /// Egress for all replicas that share one TM arrival tick: one event in,
  /// one batched pipeline walk, one emit event out.
  void run_egress_batch(EgressBatch batch);
  /// Shared egress tail (counter + trace + emission) used by both the
  /// interpreted and fused egress passes. Emission runs inline with
  /// `now_ns` = pass time + egress latency: the constant offset makes the
  /// scheduled-event hop redundant, so emit computes the same wire/recirc
  /// timestamps one event earlier (the CPU punt keeps its event).
  void finish_egress(net::PacketPtr pkt, std::uint16_t eport);
  void emit(net::PacketPtr pkt, std::uint16_t eport, sim::TimeNs now_ns);

  struct RecircChannel {
    double busy_until = 0.0;
    std::uint64_t loops = 0;
  };
  bool recirc_admin_up_ = true;
  std::uint64_t recirc_admin_drops_ = 0;

  void register_device_metrics();

  sim::EventQueue& ev_;
  AsicConfig cfg_;
  // Declared before ports/pipelines so the registry outlives every
  // component that holds cell pointers into it.
  telemetry::MetricsRegistry metrics_;
  telemetry::TraceRecorder trace_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<sim::Port>> ports_;
  std::vector<RecircChannel> recirc_;
  Parser parser_;
  Pipeline ingress_;
  Pipeline egress_;
  RegisterFile registers_;
  DigestEngine digests_;
  McastGroupTable mcast_;
  ResourceAccountant resources_;
  /// Reused across to_traffic_manager calls so the multicast fan-out
  /// allocates nothing in steady state (singleton tick groups — the common
  /// case — never touch a heap-backed batch at all).
  std::vector<PendingReplica> mcast_scratch_;
  FastPathHooks* fastpath_ = nullptr;
  std::function<void(net::PacketPtr)> cpu_punt_;
  std::function<bool(const net::Packet&)> ingress_fault_;

  // Registry-backed device counters (set up in register_device_metrics;
  // never null after construction).
  telemetry::Counter* ingress_packets_ = nullptr;
  telemetry::Counter* egress_packets_ = nullptr;
  telemetry::Counter* dropped_ = nullptr;
  telemetry::Counter* recirculations_ = nullptr;
  telemetry::Counter* replicas_ = nullptr;
  telemetry::Counter* injected_drops_ = nullptr;
};

}  // namespace ht::rmt
