
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dut/capture.cpp" "src/dut/CMakeFiles/ht_dut.dir/capture.cpp.o" "gcc" "src/dut/CMakeFiles/ht_dut.dir/capture.cpp.o.d"
  "/root/repo/src/dut/forwarder.cpp" "src/dut/CMakeFiles/ht_dut.dir/forwarder.cpp.o" "gcc" "src/dut/CMakeFiles/ht_dut.dir/forwarder.cpp.o.d"
  "/root/repo/src/dut/scan_targets.cpp" "src/dut/CMakeFiles/ht_dut.dir/scan_targets.cpp.o" "gcc" "src/dut/CMakeFiles/ht_dut.dir/scan_targets.cpp.o.d"
  "/root/repo/src/dut/tcp_server.cpp" "src/dut/CMakeFiles/ht_dut.dir/tcp_server.cpp.o" "gcc" "src/dut/CMakeFiles/ht_dut.dir/tcp_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ht_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ht_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
