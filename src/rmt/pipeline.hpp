// Pipeline: an ordered program of gateway-guarded match-action tables,
// placed onto physical stages for resource/feasibility accounting.
//
// Execution is sequential (the RMT model executes one table per stage per
// packet; our logical tables are assigned to stages first-fit). A gateway
// is a predicate on the PHV — the hardware's condition resources.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "rmt/table.hpp"

namespace ht::telemetry {
class MetricsRegistry;
}

namespace ht::rmt {

using GatewayFn = std::function<bool(const Phv&)>;

struct PipelineNode {
  std::unique_ptr<MatchActionTable> table;
  GatewayFn gate;  ///< table runs only when null or true
  int stage = -1;  ///< physical stage assigned by place()
};

class Pipeline {
 public:
  explicit Pipeline(std::string name, int max_stages = 12) : name_(std::move(name)),
                                                             max_stages_(max_stages) {}

  /// Append a table; returns a stable reference for entry installation.
  MatchActionTable& add_table(std::unique_ptr<MatchActionTable> table, GatewayFn gate = nullptr);
  MatchActionTable& add_table(std::string table_name, std::vector<MatchSpec> key,
                              std::size_t size_hint = 1024, GatewayFn gate = nullptr);

  MatchActionTable* find_table(const std::string& table_name);

  /// Run every (gated) table in order over the PHV.
  void apply(ActionContext& ctx);

  /// Run the program over a batch of packets in one walk — how the traffic
  /// manager pushes same-tick replicas through egress with a single event.
  /// Deliberately packet-outer: all of packet i's table hits (register ops,
  /// digests, rng draws) complete before packet i+1 starts, so the batch is
  /// observationally identical to one event per packet.
  void apply_batch(std::span<ActionContext> ctxs);

  /// Assign logical tables to physical stages (each table gets its own
  /// stage; dependent chains longer than max_stages are infeasible).
  /// Returns false when the program does not fit — the compiler surfaces
  /// this as a task rejection (§6.1 "errors in network testing tasks").
  bool place();
  int stages_used() const;
  int max_stages() const { return max_stages_; }

  std::size_t table_count() const { return nodes_.size(); }
  const std::string& name() const { return name_; }

  ResourceUsage estimate_resources() const;

  /// Mirror per-table hit/miss counters and stage occupancy into `reg`
  /// (labels: pipe/table/stage). Call after place(); the mirrors sample the
  /// live tables, so the program must stay installed for the registry's
  /// lifetime (HyperTester registers once per load, and a loaded task
  /// cannot be replaced on the same instance).
  void register_metrics(telemetry::MetricsRegistry& reg) const;

  void clear() { nodes_.clear(); }

 private:
  std::string name_;
  int max_stages_;
  std::vector<PipelineNode> nodes_;
};

}  // namespace ht::rmt
