#include "ntapi/compiler.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/analyzer.hpp"
#include "htpr/false_positive.hpp"
#include "net/headers.hpp"
#include "ntapi/header_space.hpp"
#include "ntapi/p4gen.hpp"

namespace ht::ntapi {

CompileError::CompileError(std::vector<ValidationError> errors)
    : std::runtime_error(format(errors)), errors_(std::move(errors)) {}

std::string CompileError::format(const std::vector<ValidationError>& errors) {
  std::string msg = "task rejected with " + std::to_string(errors.size()) + " error(s):";
  for (const auto& e : errors) msg += "\n  " + e.where + ": " + e.message;
  return msg;
}

namespace {

htps::InverseTransformTable itt_for(const RandomArray& r) {
  switch (r.dist) {
    case RandomArray::Dist::kUniform:
      return htps::InverseTransformTable::uniform(static_cast<std::uint64_t>(r.p1),
                                                  static_cast<std::uint64_t>(r.p2), r.buckets,
                                                  r.rng_bits);
    case RandomArray::Dist::kNormal:
      return htps::InverseTransformTable::normal(r.p1, r.p2, r.buckets, r.rng_bits);
    case RandomArray::Dist::kExponential:
      return htps::InverseTransformTable::exponential(r.p1, r.buckets, r.rng_bits);
  }
  return {};
}

htpr::UpdateFunc to_update_func(Reduce func) {
  switch (func) {
    case Reduce::kSum:
      return htpr::UpdateFunc::kSum;
    case Reduce::kCount:
      return htpr::UpdateFunc::kCount;
    case Reduce::kMax:
      return htpr::UpdateFunc::kMax;
    case Reduce::kMin:
      return htpr::UpdateFunc::kMin;
  }
  return htpr::UpdateFunc::kSum;
}

/// The record schema of a query-based trigger: every query field it
/// references, de-duplicated in reference order.
std::vector<net::FieldId> fifo_lanes(const Trigger& trig) {
  std::vector<net::FieldId> lanes;
  for (const auto& binding : trig.bindings()) {
    if (const auto* ref = std::get_if<QueryFieldRef>(&binding.source)) {
      if (std::find(lanes.begin(), lanes.end(), ref->field) == lanes.end()) {
        lanes.push_back(ref->field);
      }
    }
  }
  return lanes;
}

}  // namespace

htps::TemplateSpec Compiler::build_template_spec(const Task& task, std::size_t trigger_index) {
  const auto& trig = task.triggers()[trigger_index];
  htps::TemplateSpec spec;
  spec.template_id = static_cast<std::uint32_t>(trigger_index);
  spec.l4 = infer_l4(trig);
  spec.payload = trig.payload_bytes();
  if (const auto* b = trig.find(net::FieldId::kPktLen)) {
    if (const auto* v = std::get_if<Value>(&b->source)) {
      spec.pkt_len = std::max<std::size_t>(static_cast<std::size_t>(v->initial_value()),
                                           net::min_packet_size(spec.l4));
    }
  }
  for (const auto& binding : trig.bindings()) {
    if (!net::is_header_field(binding.field)) continue;
    if (const auto* v = std::get_if<Value>(&binding.source)) {
      spec.header_init[binding.field] = v->initial_value();
    }
  }
  return spec;
}

CompiledTask Compiler::compile(const Task& task) const {
  auto errors = validate(task, asic_cfg_);
  if (!errors.empty()) throw CompileError(std::move(errors));

  CompiledTask out = lower(task);

  // Static analysis over the compiled artifacts (htlint): errors reject
  // the task like validation errors do; warnings ride along.
  const auto analyzer = analysis::Analyzer::with_default_passes();
  out.analysis = analyzer.run({task, out, asic_cfg_});
  if (out.analysis.has_errors()) {
    std::vector<ValidationError> analysis_errors;
    for (const auto& d : out.analysis.diagnostics) {
      if (d.severity == analysis::Severity::kError) {
        analysis_errors.push_back({d.where, d.code + ": " + d.message});
      }
    }
    throw CompileError(std::move(analysis_errors));
  }
  for (const auto& d : out.analysis.diagnostics) {
    out.warnings.push_back(analysis::format(d));
  }
  return out;
}

analysis::AnalysisReport Compiler::lint(const Task& task) const {
  auto errors = validate(task, asic_cfg_);
  if (!errors.empty()) {
    // An invalid task cannot be lowered; surface the validation errors
    // in diagnostic form instead.
    analysis::AnalysisReport report;
    for (const auto& e : errors) {
      report.diagnostics.push_back(
          {analysis::Severity::kError, "HT100", e.where, e.message, ""});
    }
    report.sort();
    return report;
  }
  const CompiledTask lowered = lower(task);
  return analysis::Analyzer::with_default_passes().run({task, lowered, asic_cfg_});
}

CompiledTask Compiler::lower(const Task& task) const {
  CompiledTask out;
  out.name = task.name();
  out.ntapi_loc = task.ntapi_loc();
  out.chaos = task.chaos();

  // ---- triggers -> template configurations --------------------------------
  std::vector<htps::TemplateSpec> specs;
  specs.reserve(task.triggers().size());
  for (std::size_t t = 0; t < task.triggers().size(); ++t) {
    specs.push_back(build_template_spec(task, t));
  }

  for (std::size_t t = 0; t < task.triggers().size(); ++t) {
    const auto& trig = task.triggers()[t];
    htps::TemplateConfig cfg;
    cfg.spec = specs[t];

    // Injection ports (the `port` control field; default port 0).
    if (const auto* b = trig.find(net::FieldId::kPort)) {
      if (const auto* v = std::get_if<Value>(&b->source)) {
        std::vector<std::uint64_t> ports;
        v->enumerate(ports, 256);
        for (const auto p : ports) cfg.egress_ports.push_back(static_cast<std::uint16_t>(p));
      }
    }
    if (cfg.egress_ports.empty()) cfg.egress_ports.push_back(0);

    // Rate control: constant interval or a random inter-departure time.
    if (const auto* b = trig.find(net::FieldId::kInterval)) {
      const auto* v = std::get_if<Value>(&b->source);
      if (v != nullptr && v->is_constant()) {
        cfg.interval_ns = v->initial_value();
      } else if (v != nullptr && v->is_random()) {
        const auto& rnd = std::get<RandomArray>(v->get());
        cfg.interval_ns = static_cast<std::uint64_t>(std::llround(rnd.p1));
        cfg.interval_dist = itt_for(rnd);
      }
    }

    // CPS ramp: lower the schedule verbatim; the first step seeds the
    // interval register so non-ramp-aware consumers (resource accounting,
    // the P4 backend) still see a sane base rate.
    if (!trig.ramp().empty()) {
      for (const auto& step : trig.ramp()) {
        cfg.interval_ramp.push_back({step.duration_ns, step.interval_ns});
      }
      cfg.interval_ns = trig.ramp().front().interval_ns;
    }

    // Loop bound: fires = loop * stream length (0 = run forever).
    std::uint64_t stream_len = 1;
    for (const auto& binding : trig.bindings()) {
      if (const auto* v = std::get_if<Value>(&binding.source)) {
        stream_len = std::max(stream_len, v->stream_length());
      }
    }
    if (const auto* b = trig.find(net::FieldId::kLoop)) {
      if (const auto* v = std::get_if<Value>(&b->source)) {
        cfg.fire_limit = v->initial_value() * stream_len;
      }
    }

    // Stateless-connection wiring.
    if (trig.source_query()) {
      cfg.mode = htps::TemplateConfig::Mode::kFifoTriggered;
      out.fifos.push_back(FifoWiring{t, trig.source_query()->index, fifo_lanes(trig)});
    }

    // Editor program: every non-constant header-field binding, in order.
    const auto lanes = fifo_lanes(trig);
    for (const auto& binding : trig.bindings()) {
      if (!net::is_header_field(binding.field)) continue;
      if (const auto* v = std::get_if<Value>(&binding.source)) {
        if (const auto* arr = std::get_if<ValueArray>(&v->get())) {
          cfg.edits.push_back(htps::EditOp{.field = binding.field,
                                           .kind = htps::EditOp::Kind::kList,
                                           .values = arr->values});
        } else if (const auto* range = std::get_if<RangeArray>(&v->get())) {
          cfg.edits.push_back(htps::EditOp{.field = binding.field,
                                           .kind = htps::EditOp::Kind::kRange,
                                           .start = range->start,
                                           .end = range->end,
                                           .step = range->step});
        } else if (const auto* rnd = std::get_if<RandomArray>(&v->get())) {
          cfg.edits.push_back(htps::EditOp{.field = binding.field,
                                           .kind = htps::EditOp::Kind::kRandom,
                                           .distribution = itt_for(*rnd)});
        }
      } else if (const auto* ref = std::get_if<QueryFieldRef>(&binding.source)) {
        const auto lane = static_cast<std::size_t>(
            std::find(lanes.begin(), lanes.end(), ref->field) - lanes.begin());
        cfg.edits.push_back(htps::EditOp{.field = binding.field,
                                         .kind = htps::EditOp::Kind::kFromTrigger,
                                         .trigger_lane = lane,
                                         .trigger_offset = ref->offset});
      } else if (const auto* meta = std::get_if<MetaFieldRef>(&binding.source)) {
        cfg.edits.push_back(htps::EditOp{.field = binding.field,
                                         .kind = htps::EditOp::Kind::kFromMetadata,
                                         .meta_source = meta->field});
      }
    }
    // State-based delay testing: record the egress timestamp per probe.
    for (const auto index_field : trig.timestamp_records()) {
      cfg.edits.push_back(htps::EditOp{.field = index_field,
                                       .kind = htps::EditOp::Kind::kRecordTimestamp,
                                       .state_register = "delaystate." + std::to_string(t)});
    }
    out.templates.push_back(std::move(cfg));
  }

  // ---- queries -> query configurations -------------------------------------
  for (std::size_t q = 0; q < task.queries().size(); ++q) {
    const auto& query = task.queries()[q];
    CompiledQuery cq;
    cq.config.name = "q" + std::to_string(q);
    if (query.monitored_trigger()) {
      cq.config.source = htpr::QueryConfig::Source::kSent;
      cq.config.template_id = static_cast<std::uint32_t>(query.monitored_trigger()->index);
    } else {
      cq.config.source = htpr::QueryConfig::Source::kReceived;
      cq.config.ports = query.ports();
    }
    cq.config.response = query.response();

    std::vector<net::FieldId> key_fields;
    bool keyed_agg = false;
    cq.config.ops.reserve(query.steps().size());
    // In-place construction: no temporary variants (also sidesteps a GCC
    // 12 -Wmaybe-uninitialized false positive on moved variant storage).
    for (const auto& step : query.steps()) {
      if (const auto* f = std::get_if<QFilter>(&step)) {
        auto& op = cq.config.ops.emplace_back(std::in_place_type<htpr::FilterOp>);
        std::get<htpr::FilterOp>(op) = {f->field, f->cmp, f->value, f->on_result};
      } else if (const auto* m = std::get_if<QMap>(&step)) {
        key_fields = m->keys;
        auto& op = std::get<htpr::MapOp>(
            cq.config.ops.emplace_back(std::in_place_type<htpr::MapOp>));
        op.keys = m->keys;
        op.value_field = m->value_field;
        op.minus_field = m->minus_field;
        if (m->state_trigger) {
          op.state_register = "delaystate." + std::to_string(m->state_trigger->index);
          op.state_index_field = m->state_index_field;
        }
      } else if (const auto* r = std::get_if<QReduce>(&step)) {
        auto& op = cq.config.ops.emplace_back(std::in_place_type<htpr::ReduceOp>);
        std::get<htpr::ReduceOp>(op).func = to_update_func(r->func);
        keyed_agg = keyed_agg || !key_fields.empty();
      } else if (std::holds_alternative<QDistinct>(step)) {
        cq.config.ops.emplace_back(std::in_place_type<htpr::DistinctOp>);
        keyed_agg = keyed_agg || !key_fields.empty();
      }
    }

    if (keyed_agg) {
      cq.config.store.hash.digest_bits = query.store_digest_bits();
      cq.config.store.hash.buckets = query.store_buckets();
      cq.config.store.eviction_digest_type = 100 + static_cast<std::uint32_t>(q);

      // False-positive precomputation (Fig 4): enumerate the global header
      // space and install one key of each collision cluster exactly.
      auto hash = cq.config.store.hash;
      hash.key_fields = key_fields;
      const KeySpace space = enumerate_key_space(task, query, key_fields, specs, key_space_cap);
      cq.key_space_size = space.keys.size();
      if (space.exact) {
        auto collisions = htpr::analyze_collisions(hash, space.keys);
        cq.exact_keys = std::move(collisions.exact_keys);
        cq.config.store.exact_capacity =
            std::max<std::size_t>(cq.exact_keys.size() * 2, 1024);
      } else {
        cq.false_positive_free = false;
        out.warnings.push_back("query[" + std::to_string(q) +
                               "]: key space not enumerable; running without "
                               "false-positive guarantees");
      }
    }
    out.queries.push_back(std::move(cq));
  }

  // ---- P4 program -----------------------------------------------------------
  out.p4_source = generate_p4(task, out);
  out.p4_loc = count_p4_loc(out.p4_source);

  // ---- fast-path fusion plan ------------------------------------------------
  // Decided at compile time so the HT205 lint pass can report blockers and
  // HyperTester::load() can bind the fused engine without re-analysis.
  std::vector<htpr::QueryConfig> qcfgs;
  qcfgs.reserve(out.queries.size());
  for (const auto& cq : out.queries) qcfgs.push_back(cq.config);
  out.fused = rmt::fastpath::analyze(out.templates, qcfgs);
  return out;
}

void CompiledTask::annotate_trace(telemetry::TraceRecorder& tr, std::uint64_t now_ns) const {
  tr.set_process_name("hypertester: " + name);
  tr.instant("load task '" + name + "'", now_ns, telemetry::TraceRecorder::kTrackTask);
  for (std::size_t t = 0; t < templates.size(); ++t) {
    tr.instant("install trigger " + std::to_string(t), now_ns,
               telemetry::TraceRecorder::kTrackTask);
  }
  for (const CompiledQuery& q : queries) {
    tr.instant("install query '" + q.config.name + "'", now_ns,
               telemetry::TraceRecorder::kTrackTask);
  }
  for (const FifoWiring& w : fifos) {
    tr.instant("wire trigger " + std::to_string(w.trigger_index) + " <- query " +
                   std::to_string(w.query_index),
               now_ns, telemetry::TraceRecorder::kTrackTask);
  }
}

}  // namespace ht::ntapi
