#include "telemetry/metrics.hpp"

#include <cmath>

namespace ht::telemetry {

std::uint64_t Histogram::bucket_lo(std::size_t idx) {
  if (idx < kSub) return idx;
  const unsigned e = static_cast<unsigned>(idx >> kSubBits) + kSubBits - 1;
  const std::uint64_t sub = idx & (kSub - 1);
  return (kSub + sub) << (e - kSubBits);
}

std::uint64_t Histogram::bucket_hi(std::size_t idx) {
  if (idx < kSub) return idx;
  const unsigned e = static_cast<unsigned>(idx >> kSubBits) + kSubBits - 1;
  const std::uint64_t width = std::uint64_t{1} << (e - kSubBits);
  return bucket_lo(idx) + width - 1;
}

std::uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest rank: the ceil(q*n)-th sample in ascending order (1-based).
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      // Midpoint representative; clamp to the observed extremes so the
      // reported quantile never exceeds max() or undercuts min().
      const std::uint64_t mid = bucket_lo(i) + (bucket_hi(i) - bucket_lo(i)) / 2;
      const std::uint64_t lo = count_ ? min_ : 0;
      if (mid < lo) return lo;
      if (mid > max_) return max_;
      return mid;
    }
  }
  return max_;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry g;
  return g;
}

std::string render_name(const std::string& name, const std::vector<Label>& labels) {
  if (labels.empty()) return name;
  std::string out = name;
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ',';
    out += labels[i].key;
    out += "=\"";
    out += labels[i].value;
    out += '"';
  }
  out += '}';
  return out;
}

MetricsRegistry::Entry& MetricsRegistry::add_entry(std::string name, MetricOpts opts,
                                                   Kind kind) {
  // In-place construction: Entry is neither copyable nor movable (the
  // optional cells hold atomics), and the deque keeps references stable.
  Entry& e = entries_.emplace_back();
  e.full_name = render_name(name, opts.labels);
  e.name = std::move(name);
  e.help = std::move(opts.help);
  e.drop_source = std::move(opts.drop_source);
  e.kind = kind;
  return e;
}

Counter& MetricsRegistry::counter(std::string name, MetricOpts opts) {
  Entry& e = add_entry(std::move(name), std::move(opts), Kind::kCounter);
  e.counter.emplace();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(std::string name, MetricOpts opts) {
  Entry& e = add_entry(std::move(name), std::move(opts), Kind::kGauge);
  e.gauge.emplace();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(std::string name, MetricOpts opts) {
  Entry& e = add_entry(std::move(name), std::move(opts), Kind::kHistogram);
  e.histogram.emplace(&enabled_);
  return *e.histogram;
}

void MetricsRegistry::mirror_counter(std::string name, std::function<std::uint64_t()> sample,
                                     MetricOpts opts) {
  Entry& e = add_entry(std::move(name), std::move(opts), Kind::kCounter);
  e.sample_counter = std::move(sample);
}

void MetricsRegistry::mirror_gauge(std::string name, std::function<std::int64_t()> sample,
                                   MetricOpts opts) {
  Entry& e = add_entry(std::move(name), std::move(opts), Kind::kGauge);
  e.sample_gauge = std::move(sample);
}

std::optional<std::uint64_t> MetricsRegistry::counter_value(const std::string& full_name) const {
  for (const Entry& e : entries_) {
    if (e.kind == Kind::kCounter && e.full_name == full_name) return e.counter_value();
  }
  return std::nullopt;
}

std::optional<std::int64_t> MetricsRegistry::gauge_value(const std::string& full_name) const {
  for (const Entry& e : entries_) {
    if (e.kind == Kind::kGauge && e.full_name == full_name) return e.gauge_value();
  }
  return std::nullopt;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& full_name) const {
  for (const Entry& e : entries_) {
    if (e.kind == Kind::kHistogram && e.full_name == full_name) return &*e.histogram;
  }
  return nullptr;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::drop_counters() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const Entry& e : entries_) {
    if (e.drop_source.empty() || e.kind != Kind::kCounter) continue;
    out.emplace_back(e.drop_source, e.counter_value());
  }
  return out;
}

}  // namespace ht::telemetry
