file(REMOVE_RECURSE
  "CMakeFiles/poller_test.dir/poller_test.cpp.o"
  "CMakeFiles/poller_test.dir/poller_test.cpp.o.d"
  "poller_test"
  "poller_test.pdb"
  "poller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
