// Loss measurement over a degraded link.
//
// Runs the same NTAPI loss-measurement task (apps::loss_test) twice:
// first over a clean store-and-forward DUT, then with a chaos profile on
// the task — a Gilbert-Elliott bursty-loss link plus mild reordering.
// The sent/received query pair gives the measured loss rate, and the
// aggregated drop report shows where every missing packet went. Both runs
// reproduce bit-identically from the profile seed (DESIGN.md §9).
//
//   $ ./loss_measurement
#include <cstdio>

#include "apps/tasks.hpp"
#include "core/hypertester.hpp"
#include "dut/forwarder.hpp"
#include "sim/stats.hpp"

namespace {

struct Result {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::string drop_report;
};

/// Tester port 0 -> store-and-forward DUT -> tester port 1, driving a
/// 20k-probe loss_test. `chaos` is applied to the task when non-null.
Result run(const ht::ntapi::ChaosSpec* chaos) {
  using namespace ht;
  auto app = apps::loss_test(0x02020202, 0x01010101, /*tx=*/{0}, /*rx=*/{1},
                             /*probe_count=*/20'000, /*interval_ns=*/200);
  if (chaos != nullptr) app.task.set_chaos(*chaos);

  TesterConfig cfg;
  cfg.asic.num_ports = 2;
  HyperTester tester(cfg);
  dut::Forwarder::Config fcfg;
  fcfg.num_ports = 2;
  fcfg.forward_delay_ns = 600.0;
  dut::Forwarder fwd(tester.events(), fcfg);
  tester.asic().port(0).connect(&fwd.port(0));
  fwd.port(0).connect(&tester.asic().port(0));
  tester.asic().port(1).connect(&fwd.port(1));
  fwd.port(1).connect(&tester.asic().port(1));
  fwd.set_route(0, 1);

  tester.load(app.task);
  tester.start();
  tester.run_for(sim::ms(10));

  Result r;
  r.sent = tester.query_total(app.q_sent);
  r.received = tester.query_total(app.q_received);
  r.drop_report = sim::format_drop_report(tester.drop_report());
  return r;
}

void report(const char* label, const Result& r) {
  const double loss =
      r.sent > 0 ? 100.0 * static_cast<double>(r.sent - r.received) / static_cast<double>(r.sent)
                 : 0.0;
  std::printf("%s\n  sent %llu, received %llu -> measured loss %.2f%%\n  drop report:\n",
              label, static_cast<unsigned long long>(r.sent),
              static_cast<unsigned long long>(r.received), loss);
  std::printf("%s\n", r.drop_report.c_str());
}

}  // namespace

int main() {
  using namespace ht;

  report("clean link:", run(nullptr));

  // A chaos profile: Gilbert-Elliott bursty loss (~3% average) plus mild
  // reordering. One seed reproduces the whole degraded run.
  ntapi::ChaosSpec chaos;
  chaos.config.seed = 0xC0FFEE;
  chaos.config.gilbert.p_good_to_bad = 0.005;
  chaos.config.gilbert.p_bad_to_good = 0.25;
  chaos.config.gilbert.loss_good = 0.005;
  chaos.config.gilbert.loss_bad = 1.0;
  chaos.config.reorder = {.rate = 0.05, .min_delay_ns = 100, .max_delay_ns = 2'000};
  report("gilbert-elliott link (seed 0xC0FFEE):", run(&chaos));
  return 0;
}
