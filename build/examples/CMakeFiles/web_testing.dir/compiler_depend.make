# Empty compiler generated dependencies file for web_testing.
# This may be replaced when dependencies are built.
