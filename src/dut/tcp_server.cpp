#include "dut/tcp_server.hpp"

#include <cmath>

#include "net/headers.hpp"
#include "net/packet_builder.hpp"

namespace ht::dut {

namespace flag = net::tcpflag;
using net::FieldId;

TcpServer::TcpServer(sim::EventQueue& ev, Config cfg)
    : ev_(ev), cfg_(cfg), rng_(cfg.seed), port_(ev, 0, cfg.port_rate_gbps) {
  port_.on_receive = [this](net::PacketPtr pkt) { on_packet(std::move(pkt)); };
}

void TcpServer::attach(sim::Port& switch_port, sim::TimeNs propagation_ns) {
  switch_port.connect(&port_, propagation_ns);
  port_.connect(&switch_port, propagation_ns);
}

void TcpServer::reply(const net::Packet& in, std::uint64_t flags, std::uint32_t seq,
                      std::uint32_t ack, std::size_t payload_bytes) {
  const std::size_t total = net::min_packet_size(net::HeaderKind::kTcp) + payload_bytes;
  net::Packet out = net::make_tcp_packet(
      static_cast<std::uint32_t>(net::get_field(in, FieldId::kIpv4Dip)),
      static_cast<std::uint32_t>(net::get_field(in, FieldId::kIpv4Sip)),
      static_cast<std::uint16_t>(net::get_field(in, FieldId::kTcpDport)),
      static_cast<std::uint16_t>(net::get_field(in, FieldId::kTcpSport)), flags, seq, ack, total);
  const auto delay = static_cast<sim::TimeNs>(std::llround(cfg_.service_delay_ns));
  auto pkt = net::make_packet(std::move(out));
  ev_.schedule_in(delay, [this, pkt = std::move(pkt)]() mutable { port_.send(std::move(pkt)); });
}

void TcpServer::on_packet(net::PacketPtr pkt) {
  if (net::l4_kind(*pkt) != net::HeaderKind::kTcp) return;
  if (net::get_field(*pkt, FieldId::kTcpDport) != cfg_.listen_port) return;

  const auto flags = net::get_field(*pkt, FieldId::kTcpFlags);
  const auto seq = static_cast<std::uint32_t>(net::get_field(*pkt, FieldId::kTcpSeqNo));
  const net::FiveTuple key = net::FiveTuple::from_packet(*pkt);

  if (flags & flag::kSyn) {
    ++syns_;
    Connection conn;
    conn.our_seq = static_cast<std::uint32_t>(rng_.next_u64());
    conn.peer_seq = seq;
    connections_[key] = conn;
    reply(*pkt, flag::kSynAck, conn.our_seq, seq + 1);
    return;
  }

  const auto it = connections_.find(key);
  if (it == connections_.end()) return;
  Connection& conn = it->second;

  if (flags & flag::kFin) {
    reply(*pkt, flag::kFinAck, conn.our_seq + 1, seq + 1);
    connections_.erase(it);
    ++closed_;
    return;
  }

  if (flags & flag::kPsh) {
    // HTTP request: serve the page as a burst of data segments.
    ++requests_;
    for (std::size_t i = 0; i < cfg_.page_segments; ++i) {
      reply(*pkt, flag::kAck, conn.our_seq + 1 + static_cast<std::uint32_t>(i * cfg_.segment_bytes),
            seq + 1, cfg_.segment_bytes);
      ++segments_sent_;
    }
    return;
  }

  if ((flags & flag::kAck) && conn.state == ConnState::kSynReceived) {
    conn.state = ConnState::kEstablished;
    ++established_;
  }
}

}  // namespace ht::dut
