#include "rmt/digest.hpp"

#include <cmath>

namespace ht::rmt {

DigestEngine::DigestEngine(sim::EventQueue& ev) : DigestEngine(ev, Config{}) {}

void DigestEngine::emit(DigestMessage msg) {
  ++emitted_;
  if (queue_.size() >= cfg_.queue_capacity) {
    ++dropped_;
    return;
  }
  msg.asic_time_ns = ev_.now();
  queue_.push_back(std::move(msg));
  if (!busy_) pump();
}

void DigestEngine::pump() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  DigestMessage msg = std::move(queue_.front());
  queue_.pop_front();
  const auto delay = static_cast<sim::TimeNs>(std::llround(service_ns(msg.byte_size)));
  ev_.schedule_in(delay, [this, msg = std::move(msg)]() {
    ++delivered_;
    delivered_bytes_ += msg.byte_size;
    if (receiver_) receiver_(msg);
    pump();
  });
}

}  // namespace ht::rmt
