// End-to-end tests of stateless connections (§5.3): HTPR extracts trigger
// records into the trigger FIFO; FIFO-triggered HTPS templates emit the
// response with fields copied/derived from the record.
#include <gtest/gtest.h>

#include "htpr/receiver.hpp"
#include "htps/sender.hpp"
#include "net/headers.hpp"
#include "net/packet_builder.hpp"
#include "stateless/trigger_fifo.hpp"
#include "testutil.hpp"

namespace ht::stateless {
namespace {

using net::FieldId;
namespace flag = net::tcpflag;

TEST(TriggerFifo, SchemaAndEdits) {
  rmt::RegisterFile rf;
  TriggerFifo tf(rf, "tf", {FieldId::kIpv4Sip, FieldId::kTcpSeqNo}, 16);
  EXPECT_EQ(tf.lane_of(FieldId::kTcpSeqNo), 1u);
  EXPECT_THROW(tf.lane_of(FieldId::kIpv4Dip), std::out_of_range);
  const auto edit = tf.edit_from(FieldId::kTcpAckNo, FieldId::kTcpSeqNo, 1);
  EXPECT_EQ(edit.kind, htps::EditOp::Kind::kFromTrigger);
  EXPECT_EQ(edit.trigger_lane, 1u);
  EXPECT_EQ(edit.trigger_offset, 1);
  EXPECT_THROW(TriggerFifo(rf, "tf2", {}, 16), std::invalid_argument);
}

TEST(StatelessConnection, SynAckTriggersAck) {
  // The TCP-handshake third step from §5.4: a SYN+ACK arriving on port 0
  // triggers an ACK out of port 1, with addresses/ports swapped and
  // ack_no = seq_no + 1.
  test::AsicTestbed tb(rmt::AsicConfig{.num_ports = 2});

  TriggerFifo tf(tb.asic.registers(), "synack_fifo",
                 {FieldId::kIpv4Sip, FieldId::kIpv4Dip, FieldId::kTcpSport, FieldId::kTcpDport,
                  FieldId::kTcpSeqNo, FieldId::kTcpAckNo});

  htps::Sender sender(tb.asic);
  htps::TemplateConfig ack_tpl;
  ack_tpl.spec.l4 = net::HeaderKind::kTcp;
  ack_tpl.spec.pkt_len = 64;
  ack_tpl.spec.header_init = {{FieldId::kTcpFlags, flag::kAck}};
  ack_tpl.egress_ports = {1};
  ack_tpl.mode = htps::TemplateConfig::Mode::kFifoTriggered;
  ack_tpl.trigger_fifo = &tf.fifo();
  // Response fields from the trigger record (directions swapped).
  ack_tpl.edits = {
      tf.edit_from(FieldId::kIpv4Dip, FieldId::kIpv4Sip),
      tf.edit_from(FieldId::kIpv4Sip, FieldId::kIpv4Dip),
      tf.edit_from(FieldId::kTcpDport, FieldId::kTcpSport),
      tf.edit_from(FieldId::kTcpSport, FieldId::kTcpDport),
      tf.edit_from(FieldId::kTcpSeqNo, FieldId::kTcpAckNo),
      tf.edit_from(FieldId::kTcpAckNo, FieldId::kTcpSeqNo, 1),
  };
  sender.add_template(std::move(ack_tpl));
  sender.install();

  htpr::Receiver rx(tb.asic);
  htpr::QueryConfig q;
  q.name = "synack";
  q.ops = {htpr::FilterOp{FieldId::kTcpFlags, htpr::Cmp::kEq, flag::kSynAck}};
  q.triggers.push_back(tf.extract_spec());
  rx.add_query(std::move(q));
  rx.install();

  sender.start();
  tb.ev.run_until(sim::us(50));  // let the template enter the loop

  // Server's SYN+ACK arrives on port 0.
  auto synack = net::make_packet(
      net::make_tcp_packet(net::ipv4_address("5.5.5.5"), net::ipv4_address("1.1.0.1"), 80, 4096,
                           flag::kSynAck, /*seq=*/7777, /*ack=*/2));
  tb.sinks[0]->port.send(synack);
  tb.ev.run_until(sim::ms(1));

  ASSERT_EQ(tb.sinks[1]->packets.size(), 1u);
  const auto& ack = *tb.sinks[1]->packets[0];
  EXPECT_EQ(net::get_field(ack, FieldId::kTcpFlags), flag::kAck);
  EXPECT_EQ(net::get_field(ack, FieldId::kIpv4Dip), net::ipv4_address("5.5.5.5"));
  EXPECT_EQ(net::get_field(ack, FieldId::kIpv4Sip), net::ipv4_address("1.1.0.1"));
  EXPECT_EQ(net::get_field(ack, FieldId::kTcpDport), 80u);
  EXPECT_EQ(net::get_field(ack, FieldId::kTcpSport), 4096u);
  EXPECT_EQ(net::get_field(ack, FieldId::kTcpSeqNo), 2u);          // = ack_no of SYN+ACK
  EXPECT_EQ(net::get_field(ack, FieldId::kTcpAckNo), 7778u);       // = seq_no + 1
  EXPECT_TRUE(net::verify_checksums(ack));
}

TEST(StatelessConnection, OneResponsePerReceivedPacket) {
  test::AsicTestbed tb(rmt::AsicConfig{.num_ports = 2});
  TriggerFifo tf(tb.asic.registers(), "fifo", {FieldId::kIpv4Sip});
  htps::Sender sender(tb.asic);
  htps::TemplateConfig tpl;
  tpl.spec.l4 = net::HeaderKind::kTcp;
  tpl.spec.header_init = {{FieldId::kTcpFlags, flag::kAck}};
  tpl.egress_ports = {1};
  tpl.mode = htps::TemplateConfig::Mode::kFifoTriggered;
  tpl.trigger_fifo = &tf.fifo();
  tpl.edits = {tf.edit_from(FieldId::kIpv4Dip, FieldId::kIpv4Sip)};
  sender.add_template(std::move(tpl));
  sender.install();

  htpr::Receiver rx(tb.asic);
  htpr::QueryConfig q;
  q.name = "all_synack";
  q.ops = {htpr::FilterOp{FieldId::kTcpFlags, htpr::Cmp::kEq, flag::kSynAck}};
  q.triggers.push_back(tf.extract_spec());
  rx.add_query(std::move(q));
  rx.install();
  sender.start();
  tb.ev.run_until(sim::us(50));

  constexpr int kCount = 37;
  for (int i = 0; i < kCount; ++i) {
    tb.sinks[0]->port.send(net::make_packet(
        net::make_tcp_packet(100 + i, 200, 80, 1000, flag::kSynAck)));
  }
  tb.ev.run_until(sim::ms(2));
  ASSERT_EQ(tb.sinks[1]->packets.size(), static_cast<std::size_t>(kCount));
  // Each response echoes its own trigger's source address.
  std::set<std::uint64_t> dips;
  for (const auto& p : tb.sinks[1]->packets) {
    dips.insert(net::get_field(*p, FieldId::kIpv4Dip));
  }
  EXPECT_EQ(dips.size(), static_cast<std::size_t>(kCount));
  // Non-matching packets trigger nothing.
  tb.sinks[0]->port.send(
      net::make_packet(net::make_tcp_packet(1, 2, 3, 4, flag::kAck)));
  tb.ev.run_until(sim::ms(3));
  EXPECT_EQ(tb.sinks[1]->packets.size(), static_cast<std::size_t>(kCount));
}

}  // namespace
}  // namespace ht::stateless
