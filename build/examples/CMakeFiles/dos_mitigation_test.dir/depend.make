# Empty dependencies file for dos_mitigation_test.
# This may be replaced when dependencies are built.
