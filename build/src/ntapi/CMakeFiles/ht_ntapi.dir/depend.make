# Empty dependencies file for ht_ntapi.
# This may be replaced when dependencies are built.
