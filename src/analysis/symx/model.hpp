// Symbolic model of one compiled task: the pipeline a per-packet walk
// sees, abstracted into (a) parse-graph paths, (b) installed rules, and
// (c) per-query path conditions solved by the interval solver.
//
// The model is pure analysis — it never touches a live ASIC. It is shared
// by the conformance oracle (src/analysis/symx/oracle.hpp), which turns
// feasible paths into concrete packets, and by the symx lint passes
// (HT204 shadowed rules, HT301 dead queries, HT302 dead entries, HT303
// unreachable parser states).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/symx/solver.hpp"
#include "htps/sender.hpp"
#include "net/fields.hpp"
#include "ntapi/compiler.hpp"
#include "rmt/asic.hpp"
#include "rmt/parser.hpp"

namespace ht::analysis::symx {

// --- parse graph -------------------------------------------------------------

/// One acyclic walk of the parse graph: the states visited, the headers
/// extracted along the way, and the constraints the taken transitions put
/// on the select fields.
struct ParserPath {
  std::vector<std::string> states;
  std::vector<net::HeaderKind> headers;
  Cube constraints;
};

/// Enumerate every path from the entry state to accept (depth-capped; the
/// canonical graphs are shallow DAGs).
std::vector<ParserPath> enumerate_parser_paths(const rmt::Parser& parser);

/// States no walk from the entry can reach (HT303).
std::vector<std::string> unreachable_parser_states(const rmt::Parser& parser);

// --- edit streams ------------------------------------------------------------

/// Concrete simulation of one template's editor state machine: the exact
/// per-replica field edits the HTPS egress editor performs, mirrored from
/// htps::Sender::egress_action. Deterministic ops (lists, ranges, trigger
/// records) produce concrete values; RNG- and timestamp-driven ops are
/// reported as don't-care fields.
class EditStream {
 public:
  explicit EditStream(const htps::TemplateConfig& cfg);

  struct Step {
    std::vector<std::pair<net::FieldId, std::uint64_t>> values;  ///< concrete edits, in op order
    std::vector<net::FieldId> dont_care;                         ///< RNG / egress-timestamp edits
  };

  /// Advance one front-panel replica. `record` is the bridged trigger
  /// record for FIFO-triggered templates (null for timer templates).
  Step next(const std::vector<std::uint64_t>* record = nullptr);
  void reset();

 private:
  const htps::TemplateConfig& cfg_;
  std::vector<std::uint64_t> cursors_;  ///< per-op list index / range accumulator
};

// --- rules and paths ---------------------------------------------------------

enum class RuleKind : std::uint8_t {
  kSenderEntry,  ///< replicator table entry for one template
  kEdit,         ///< one editor action
  kQueryGate,    ///< a query's port/template gate
  kFilter,       ///< one filter operator
  kMapOp,        ///< map operator
  kAggOp,        ///< reduce/distinct operator
  kExactKey,     ///< one precomputed exact-key-matching entry
};

struct RuleInfo {
  RuleKind kind;
  std::string id;     ///< stable label, e.g. "trigger[0].edit[1] ipv4.dip"
  std::string where;  ///< diagnostic location: "trigger[0]" / "query[2]"
  std::size_t owner = 0;  ///< trigger or query index
  std::size_t sub = 0;    ///< op / entry ordinal within the owner
  bool exercised = false;
  bool dead = false;  ///< statically unhittable (HT302)
};

struct PathInfo {
  std::string id;  ///< "query[0]/pass", "query[1]/fail@2", "trigger[0]/editor", ...
  std::string description;
  std::size_t query = SIZE_MAX;    ///< owning query, if any
  std::size_t trigger = SIZE_MAX;  ///< owning trigger for editor paths
  bool sent = false;               ///< egress-side path (replica stream)
  net::HeaderKind l4 = net::HeaderKind::kUdp;
  std::uint16_t port = 0;  ///< inject port (received) — ignored for sent paths
  Cube cube;               ///< path condition over header/meta fields
  bool feasible = true;
};

/// Everything the symbolic walk derives from one compiled task.
class TaskModel {
 public:
  TaskModel(const ntapi::Task& task, const ntapi::CompiledTask& compiled,
            const rmt::AsicConfig& asic);

  const std::vector<PathInfo>& paths() const { return paths_; }
  std::vector<RuleInfo>& rules() { return rules_; }
  const std::vector<RuleInfo>& rules() const { return rules_; }

  /// The parser path packets of query `q`'s monitored traffic take, and
  /// the L4 kind the oracle should materialize for it.
  net::HeaderKind query_l4(std::size_t q) const { return query_l4_.at(q); }
  const ParserPath* parser_path(net::HeaderKind l4) const;
  bool field_extracted(net::HeaderKind l4, net::FieldId f) const;

  /// Feasible *matching* paths per query (used by the HT301 pass): at
  /// least one feasible path whose packet can survive every operator.
  std::size_t feasible_match_paths(std::size_t q) const { return match_paths_.at(q); }

  const std::vector<ParserPath>& parser_paths() const { return parser_paths_; }

  const ntapi::Task& task() const { return task_; }
  const ntapi::CompiledTask& compiled() const { return compiled_; }
  const rmt::AsicConfig& asic() const { return asic_; }

 private:
  void build_rules();
  void build_received_paths(std::size_t q);
  void build_sent_paths(std::size_t q);
  void build_editor_paths(std::size_t t);
  bool sent_stream_can_match(std::size_t q, std::size_t cap);

  const ntapi::Task& task_;
  const ntapi::CompiledTask& compiled_;
  const rmt::AsicConfig& asic_;
  rmt::Parser parser_;
  std::vector<ParserPath> parser_paths_;
  std::vector<PathInfo> paths_;
  std::vector<RuleInfo> rules_;
  std::vector<net::HeaderKind> query_l4_;
  std::vector<std::size_t> match_paths_;
};

/// Human-readable rule-kind name for reports.
std::string_view rule_kind_name(RuleKind kind);

}  // namespace ht::analysis::symx
