# Empty dependencies file for p4gen_test.
# This may be replaced when dependencies are built.
