// Global header-space extraction (§5.2 "compiling packet stream queries").
//
// HyperTester's false-positive precomputation needs every key tuple a
// query can observe. For sent-traffic queries that is the cartesian
// product of the monitored trigger's per-field value supports. For
// received-traffic queries the space is the triggers' space with the
// direction reversed (responses mirror requests: sip <-> dip,
// sport <-> dport), which covers scans, handshakes and echo protocols.
// Spaces beyond the cap are reported as inexact — the compiler then warns
// that the query is not guaranteed false-positive-free.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "htps/template_packet.hpp"
#include "ntapi/task.hpp"

namespace ht::ntapi {

/// A ternary cube over a fixed 128-bit key: `mask` marks the cared-about
/// bits, `value` their required values (don't-care bits of `value` are
/// kept at zero). This is the bit-vector half of the header-space algebra
/// the symbolic path oracle (src/analysis/symx/) solves over — wide
/// enough for the concatenation of every key tuple the compiler emits
/// (e.g. sip+dip+sport+dport = 96 bits).
class KeyBits {
 public:
  static constexpr unsigned kBits = 128;
  static constexpr unsigned kWordBits = 64;

  /// Constrain `width` bits starting at `offset` (LSB-first across the two
  /// words; a field may span the word boundary) to equal `value`.
  /// `width == 0` is a no-op, so zero-width fields compose harmlessly.
  void set_bits(unsigned offset, unsigned width, std::uint64_t value);
  /// Read `width` bits starting at `offset` out of the value plane.
  std::uint64_t get_bits(unsigned offset, unsigned width) const;
  /// Read the same span out of the mask plane (which bits are cared).
  std::uint64_t get_mask(unsigned offset, unsigned width) const;

  unsigned cared_count() const;
  bool is_full() const { return cared_count() == kBits; }
  /// The complement of a cube (as a set of keys) is empty exactly when
  /// the cube is the whole space: no bit is cared about.
  bool complement_empty() const { return cared_count() == 0; }

  /// Cube intersection: nullopt when the two cubes disagree on a bit both
  /// care about (empty intersection); otherwise the meet of both.
  static std::optional<KeyBits> intersect(const KeyBits& a, const KeyBits& b);
  /// True iff every key satisfying `other` also satisfies `*this`
  /// (this cube's set covers the other's).
  bool covers(const KeyBits& other) const;

  friend bool operator==(const KeyBits& a, const KeyBits& b) {
    return a.value_ == b.value_ && a.mask_ == b.mask_;
  }

  const std::array<std::uint64_t, 2>& value_words() const { return value_; }
  const std::array<std::uint64_t, 2>& mask_words() const { return mask_; }

 private:
  std::array<std::uint64_t, 2> value_{};
  std::array<std::uint64_t, 2> mask_{};
};

struct KeySpace {
  std::vector<std::vector<std::uint64_t>> keys;
  bool exact = true;  ///< false when enumeration hit the cap
};

/// Enumerate the key space of `query` over the given key fields.
/// `templates` holds the compiled template spec of each trigger (for
/// default field values of unset fields).
KeySpace enumerate_key_space(const Task& task, const Query& query,
                             const std::vector<net::FieldId>& key_fields,
                             const std::vector<htps::TemplateSpec>& templates,
                             std::size_t cap = 4'000'000);

/// The response-direction twin of a field (sip <-> dip, sport <-> dport);
/// fields without a direction map to themselves.
net::FieldId reversed_field(net::FieldId field);

}  // namespace ht::ntapi
