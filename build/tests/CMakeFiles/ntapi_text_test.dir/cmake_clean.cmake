file(REMOVE_RECURSE
  "CMakeFiles/ntapi_text_test.dir/ntapi_text_test.cpp.o"
  "CMakeFiles/ntapi_text_test.dir/ntapi_text_test.cpp.o.d"
  "ntapi_text_test"
  "ntapi_text_test.pdb"
  "ntapi_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntapi_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
