// htlint diagnostics (§6.1 "HyperTester will reject the mistaken testing
// tasks" — the compiled-artifact half).
//
// `ntapi::validate` checks the *source* task: field widths, handle
// references, operator sequences. The analysis passes in this directory
// check the *compiled* artifact: the generated table/editor programs, the
// register access patterns, and whether the pipeline fits the ASIC. Every
// finding is a `Diagnostic` with a stable code suitable for golden-file
// testing:
//
//   HT100  validation error surfaced through the lint entry point
//   HT101  pipeline does not fit the ASIC's match-action stages
//   HT102  SALU discipline: register accessed twice in one pipeline pass
//   HT103  parser coverage: field read but never extracted on the
//          monitored traffic's parse path
//   HT104  editor dependency order: action reads a field a later action
//          in the same program writes
//   HT105  trigger-FIFO schema mismatch between HTPR record and HTPS
//          template
//   HT201  query filter shadowed by earlier filters (can never match)
//   HT202  sent-traffic filter dead against the trigger's value support
//   HT203  duplicate entry in the exact-key-matching table (shadowed)
//   HT204  rule shadowed: a filter no packet reaching it can fail (an
//          earlier rule's key space fully covers it)
//   HT205  template cannot run on the task-compiled fast path (one
//          warning per blocking construct; falls back to interpreted)
//   HT206  response-classification rule unreachable (shadowed by an
//          earlier rule) or ambiguous (duplicate class name)
//   HT301  symbolic walk found zero feasible matching paths for a query
//   HT302  exact-key table entry outside the enumerated key space
//   HT303  parser state unreachable from the entry state
//
// HT1xx are errors (compile() refuses the task); HT2xx/HT3xx are warnings
// (carried through CompiledTask).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ht::analysis {

enum class Severity : std::uint8_t { kWarning, kError };

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;     ///< "HT102"
  std::string where;    ///< "trigger[0]", "query[2]", "stage 4"
  std::string message;  ///< what is wrong
  std::string hint;     ///< how to fix it (may be empty)
  /// Ordinal of the emitting pass (1-based, stamped by Analyzer::run; 0
  /// for diagnostics injected outside a pass). Primary sort key, so the
  /// report order is byte-stable regardless of code numbering.
  std::uint16_t pass_id = 0;
};

/// One line, stable across runs: "HT102 error trigger[0]: message".
std::string format(const Diagnostic& d);

/// The result of running every analysis pass over one compiled task.
struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;
  /// Match-action stages the placement model needed (<= max_stages when
  /// the stage-fit pass is silent).
  std::size_t stages_used = 0;

  bool has_errors() const;
  std::size_t error_count() const;
  std::size_t warning_count() const;
  /// Deterministic order for printing and golden files: (pass id,
  /// location, code, message). Pass-id-first keeps the order byte-stable
  /// when a pass gains new codes; within the default registration order
  /// errors (HT1xx passes) still precede warnings.
  void sort();
};

}  // namespace ht::analysis
