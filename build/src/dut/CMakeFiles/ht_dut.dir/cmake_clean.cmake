file(REMOVE_RECURSE
  "CMakeFiles/ht_dut.dir/capture.cpp.o"
  "CMakeFiles/ht_dut.dir/capture.cpp.o.d"
  "CMakeFiles/ht_dut.dir/forwarder.cpp.o"
  "CMakeFiles/ht_dut.dir/forwarder.cpp.o.d"
  "CMakeFiles/ht_dut.dir/scan_targets.cpp.o"
  "CMakeFiles/ht_dut.dir/scan_targets.cpp.o.d"
  "CMakeFiles/ht_dut.dir/tcp_server.cpp.o"
  "CMakeFiles/ht_dut.dir/tcp_server.cpp.o.d"
  "libht_dut.a"
  "libht_dut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_dut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
