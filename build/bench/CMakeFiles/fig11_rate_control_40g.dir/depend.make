# Empty dependencies file for fig11_rate_control_40g.
# This may be replaced when dependencies are built.
