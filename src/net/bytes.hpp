// Big-endian (network order) byte-buffer primitives.
//
// All multi-byte quantities on the wire are big-endian; these helpers read
// and write integral values of 1..8 bytes at arbitrary offsets of a byte
// span. Bounds are the caller's responsibility and checked with assertions
// in debug builds; the higher layers (parser/deparser) validate lengths
// before calling down here.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ht::net {

/// Read `width` bytes (1..8) starting at `offset` as a big-endian integer.
inline std::uint64_t read_be(std::span<const std::uint8_t> buf, std::size_t offset,
                             std::size_t width) {
  assert(width >= 1 && width <= 8);
  assert(offset + width <= buf.size());
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < width; ++i) {
    value = (value << 8) | buf[offset + i];
  }
  return value;
}

/// Write the low `width` bytes (1..8) of `value` big-endian at `offset`.
inline void write_be(std::span<std::uint8_t> buf, std::size_t offset, std::size_t width,
                     std::uint64_t value) {
  assert(width >= 1 && width <= 8);
  assert(offset + width <= buf.size());
  for (std::size_t i = 0; i < width; ++i) {
    buf[offset + width - 1 - i] = static_cast<std::uint8_t>(value & 0xffu);
    value >>= 8;
  }
}

/// Read a bit-field of `bit_width` bits starting `bit_offset` bits into the
/// buffer (bit 0 = MSB of byte 0, as header diagrams are drawn).
inline std::uint64_t read_bits(std::span<const std::uint8_t> buf, std::size_t bit_offset,
                               std::size_t bit_width) {
  assert(bit_width >= 1 && bit_width <= 64);
  // Fast path: byte-aligned fields (the vast majority of header fields).
  if ((bit_offset & 7) == 0 && (bit_width & 7) == 0) {
    return read_be(buf, bit_offset / 8, bit_width / 8);
  }
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < bit_width; ++i) {
    const std::size_t bit = bit_offset + i;
    const std::size_t byte = bit / 8;
    assert(byte < buf.size());
    const unsigned shift = 7u - static_cast<unsigned>(bit % 8);
    value = (value << 1) | ((buf[byte] >> shift) & 1u);
  }
  return value;
}

/// Write a bit-field of `bit_width` bits starting `bit_offset` bits in.
inline void write_bits(std::span<std::uint8_t> buf, std::size_t bit_offset,
                       std::size_t bit_width, std::uint64_t value) {
  assert(bit_width >= 1 && bit_width <= 64);
  if ((bit_offset & 7) == 0 && (bit_width & 7) == 0) {
    write_be(buf, bit_offset / 8, bit_width / 8, value);
    return;
  }
  for (std::size_t i = 0; i < bit_width; ++i) {
    const std::size_t bit = bit_offset + i;
    const std::size_t byte = bit / 8;
    assert(byte < buf.size());
    const unsigned shift = 7u - static_cast<unsigned>(bit % 8);
    const std::uint64_t src_bit = (value >> (bit_width - 1 - i)) & 1u;
    if (src_bit != 0) {
      buf[byte] = static_cast<std::uint8_t>(buf[byte] | (1u << shift));
    } else {
      buf[byte] = static_cast<std::uint8_t>(buf[byte] & ~(1u << shift));
    }
  }
}

/// Mask with the low `bits` bits set (bits in 1..64).
constexpr std::uint64_t low_mask(std::size_t bits) {
  return bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}

}  // namespace ht::net
