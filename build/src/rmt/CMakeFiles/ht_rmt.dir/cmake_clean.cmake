file(REMOVE_RECURSE
  "CMakeFiles/ht_rmt.dir/asic.cpp.o"
  "CMakeFiles/ht_rmt.dir/asic.cpp.o.d"
  "CMakeFiles/ht_rmt.dir/digest.cpp.o"
  "CMakeFiles/ht_rmt.dir/digest.cpp.o.d"
  "CMakeFiles/ht_rmt.dir/hashing.cpp.o"
  "CMakeFiles/ht_rmt.dir/hashing.cpp.o.d"
  "CMakeFiles/ht_rmt.dir/parser.cpp.o"
  "CMakeFiles/ht_rmt.dir/parser.cpp.o.d"
  "CMakeFiles/ht_rmt.dir/pipeline.cpp.o"
  "CMakeFiles/ht_rmt.dir/pipeline.cpp.o.d"
  "CMakeFiles/ht_rmt.dir/resources.cpp.o"
  "CMakeFiles/ht_rmt.dir/resources.cpp.o.d"
  "CMakeFiles/ht_rmt.dir/table.cpp.o"
  "CMakeFiles/ht_rmt.dir/table.cpp.o.d"
  "libht_rmt.a"
  "libht_rmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_rmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
