// Header layout constants and direct field access on raw packets.
//
// The authoritative field offsets live in FieldRegistry; this module adds
// header base offsets for the canonical Eth/IPv4/{TCP|UDP|ICMP} stack and
// convenience functions to read/write any FieldId directly on a raw packet.
// The RMT parser performs the same job programmably; devices outside the
// switch use these helpers.
#pragma once

#include <cstdint>
#include <optional>

#include "net/fields.hpp"
#include "net/packet.hpp"

namespace ht::net {

constexpr std::size_t kEthernetBytes = 14;
constexpr std::size_t kIpv4Bytes = 20;
constexpr std::size_t kTcpBytes = 20;
constexpr std::size_t kUdpBytes = 8;
constexpr std::size_t kIcmpBytes = 8;
constexpr std::size_t kNvpBytes = 12;

/// Byte offset where `header` starts in the canonical stack; nullopt for
/// HeaderKind::kNone.
std::optional<std::size_t> header_base_offset(HeaderKind header);

/// Minimum total packet size for a stack ending in the given L4 header.
std::size_t min_packet_size(HeaderKind l4);

/// Read a wire field from a raw packet laid out as the canonical stack.
/// Throws std::out_of_range when the packet is too short.
std::uint64_t get_field(const Packet& pkt, FieldId id);

/// Write a wire field into a raw packet. Value is masked to field width.
void set_field(Packet& pkt, FieldId id, std::uint64_t value);

/// True when the packet is long enough to contain `id`'s header.
bool has_field(const Packet& pkt, FieldId id);

/// Recompute the IPv4 header checksum and, when the protocol is TCP/UDP/
/// ICMP, the L4 checksum (with pseudo-header). UDP checksum zero stays zero.
void fix_checksums(Packet& pkt);

/// Verify checksums; returns false when any present checksum is wrong.
bool verify_checksums(const Packet& pkt);

/// Which L4 protocol the packet carries (by ipv4.proto), if IPv4 at all.
std::optional<HeaderKind> l4_kind(const Packet& pkt);

}  // namespace ht::net
