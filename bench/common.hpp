// Shared utilities for the table/figure regeneration harnesses.
//
// Every binary in bench/ regenerates one table or figure from the paper's
// evaluation (§7) and prints the series the paper reports, plus the
// paper's reference values where meaningful. Absolute agreement is not
// the goal (the substrate is a simulator, see DESIGN.md); the shape —
// who wins, by how much, where things saturate — is.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/hypertester.hpp"
#include "dut/capture.hpp"

namespace ht::bench {

inline void headline(const std::string& what, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", what.c_str());
  if (!paper_ref.empty()) std::printf("(paper: %s)\n", paper_ref.c_str());
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::fputc('\n', stdout);
}

/// A tester with capture sinks attached to every front-panel port.
struct Testbed {
  explicit Testbed(std::size_t ports = 4, double rate_gbps = 100.0,
                   std::size_t recirc_channels = 1) {
    TesterConfig cfg;
    cfg.asic.num_ports = ports;
    cfg.asic.port_rate_gbps = rate_gbps;
    cfg.asic.num_recirc_channels = recirc_channels;
    tester = std::make_unique<HyperTester>(cfg);
    for (std::size_t i = 0; i < ports; ++i) {
      sinks.push_back(std::make_unique<dut::Capture>(tester->events(),
                                                     static_cast<std::uint16_t>(1000 + i),
                                                     rate_gbps));
      sinks.back()->set_count_only(true);
      sinks.back()->attach(tester->asic().port(static_cast<std::uint16_t>(i)));
    }
  }

  std::unique_ptr<HyperTester> tester;
  std::vector<std::unique_ptr<dut::Capture>> sinks;
};

/// Record TX-start timestamps on a switch port (for inter-departure-time
/// analysis) after a warmup count.
struct TxRecorder {
  explicit TxRecorder(sim::Port& port, std::size_t warmup = 200) : warmup_(warmup) {
    port.on_transmit = [this](const net::Packet&, sim::TimeNs t) {
      if (seen_++ >= warmup_) times.push_back(t);
    };
  }
  std::vector<std::uint64_t> times;

 private:
  std::size_t warmup_;
  std::size_t seen_ = 0;
};

}  // namespace ht::bench
