file(REMOVE_RECURSE
  "libht_dut.a"
)
