// Chaos property tests.
//
// Two contracts pinned here, both required for the fault-injection layer
// to be trustworthy:
//
//  1. False-positive freedom under chaos: HTPR's exact per-key counters
//     must equal a wire-level ground truth for every key even when the
//     link loses (<=10%), reorders (<=64-packet window), duplicates
//     (<=1%) and corrupts probes. Loss may remove counts and duplication
//     may add them — but never may one key's traffic pollute another's
//     counter, and corrupted packets must land in the integrity counter,
//     not the aggregate. Swept across seeds.
//
//  2. Determinism: a chaos run is a function of the profile seed. Two
//     runs with identical seeds produce bit-identical event counts, port
//     counters, register state, and drop reports.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/hypertester.hpp"
#include "dut/forwarder.hpp"
#include "net/headers.hpp"
#include "ntapi/task.hpp"
#include "rmt/parser.hpp"

namespace ht {
namespace {

using net::FieldId;
using ntapi::Query;
using ntapi::Reduce;
using ntapi::Task;
using ntapi::Trigger;
using ntapi::Value;

constexpr unsigned kKeys = 256;

/// Bounded probe sweep: one UDP probe per ipv4.id in [0, kKeys), counted
/// per id by a keyed received query on port 1.
struct FpTask {
  Task task{"chaos_fp"};
  ntapi::QueryHandle q_per_key;
};

FpTask make_fp_task() {
  FpTask out;
  std::vector<std::uint16_t> tx{0};
  out.task.add_trigger(
      Trigger()
          .set({FieldId::kIpv4Dip, FieldId::kIpv4Sip, FieldId::kIpv4Proto, FieldId::kUdpDport,
                FieldId::kUdpSport},
               {0x02020202, 0x01010101, net::ipproto::kUdp, 9000, 9000})
          .set(FieldId::kIpv4Id, Value::range(0, kKeys - 1, 1))
          .set(FieldId::kInterval, 200)
          .set(FieldId::kLoop, 1)
          .set(FieldId::kPort, Value::array({tx.begin(), tx.end()})));
  out.q_per_key = out.task.add_query(Query()
                                         .monitor_ports({1})
                                         .filter(FieldId::kUdpDport, htpr::Cmp::kEq, 9000)
                                         .map({FieldId::kIpv4Id})
                                         .reduce(Reduce::kCount));
  return out;
}

/// Tester port 0 -> store-and-forward DUT -> tester port 1.
struct Loop {
  Loop() {
    dut::Forwarder::Config fcfg;
    fcfg.num_ports = 2;
    fcfg.forward_delay_ns = 600.0;
    fwd = std::make_unique<dut::Forwarder>(tester.events(), fcfg);
    tester.asic().port(0).connect(&fwd->port(0));
    fwd->port(0).connect(&tester.asic().port(0));
    tester.asic().port(1).connect(&fwd->port(1));
    fwd->port(1).connect(&tester.asic().port(1));
  }

  HyperTester tester{[] {
    TesterConfig cfg;
    cfg.asic.num_ports = 2;
    return cfg;
  }()};
  std::unique_ptr<dut::Forwarder> fwd;
};

class ChaosFpSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChaosFpSweep, KeyedCountsMatchWireGroundTruth) {
  const int seed = GetParam();
  auto app = make_fp_task();
  ntapi::ChaosSpec chaos;
  chaos.config.seed = 0xC0FFEE + static_cast<std::uint64_t>(seed);
  chaos.config.loss.rate = 0.02 + 0.008 * (seed % 10);  // <= 10%
  chaos.config.reorder = {.rate = 0.2, .min_delay_ns = 100, .max_delay_ns = 10'000};
  chaos.config.duplicate.rate = 0.01;
  chaos.config.corrupt.rate = (seed % 2 != 0) ? 0.01 : 0.0;
  app.task.set_chaos(chaos);

  Loop loop;
  loop.tester.load(app.task);

  // Ground truth, observed on the wire just before the monitored port:
  // per-key arrivals (duplicates included), skipping packets whose
  // checksums no longer verify — exactly what the query's integrity gate
  // is required to reject.
  std::map<std::uint64_t, std::uint64_t> truth;
  std::uint64_t bad_checksum = 0;
  auto& rx = loop.tester.asic().port(1);
  auto inner = rx.on_receive;
  const rmt::Parser& parser = loop.tester.asic().parser();
  rx.on_receive = [&](net::PacketPtr pkt) {
    if (!net::verify_checksums(*pkt)) {
      ++bad_checksum;
    } else {
      rmt::Phv phv = parser.parse(pkt);
      if (phv.get(FieldId::kUdpDport) == 9000) ++truth[phv.get(FieldId::kIpv4Id)];
    }
    inner(std::move(pkt));
  };

  loop.tester.start();
  loop.tester.run_for(sim::us(300));

  std::uint64_t truth_total = 0;
  for (const auto& [key, count] : truth) truth_total += count;
  ASSERT_GT(truth_total, kKeys / 2);  // the scenario must carry real traffic

  // The core property: every key's counter equals its wire truth. Loss
  // shrinks counts, duplication grows them — but both sides see the same
  // packets, so any mismatch is a false positive (or a silent drop).
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const auto it = truth.find(key);
    const std::uint64_t expected = it == truth.end() ? 0 : it->second;
    ASSERT_EQ(loop.tester.query_value(app.q_per_key, {key}), expected)
        << "key " << key << " diverged at seed " << seed;
  }

  // Corrupted probes were rejected by the integrity gate, visibly.
  if (chaos.config.corrupt.rate > 0.0) {
    EXPECT_EQ(loop.tester.receiver().checksum_fails(app.q_per_key.index), bad_checksum);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosFpSweep, ::testing::Range(0, 10));

/// Everything observable about one finished chaos run.
struct ChaosSnapshot {
  std::uint64_t events_executed = 0;
  std::uint64_t matched = 0;
  std::vector<std::uint64_t> port_counters;
  std::vector<std::pair<std::string, std::uint64_t>> drops;
  std::vector<std::pair<std::string, std::vector<std::uint64_t>>> registers;

  bool operator==(const ChaosSnapshot&) const = default;
};

ChaosSnapshot chaos_golden_run() {
  auto app = make_fp_task();
  ntapi::ChaosSpec chaos;
  chaos.config.seed = 0x5eed;
  chaos.config.loss.rate = 0.05;
  chaos.config.reorder = {.rate = 0.2, .min_delay_ns = 100, .max_delay_ns = 5'000};
  chaos.config.duplicate.rate = 0.01;
  chaos.config.corrupt.rate = 0.01;
  chaos.config.flap = {.first_down_at = sim::us(20), .down_ns = sim::us(5), .period_ns = 0,
                       .count = 1};
  app.task.set_chaos(chaos);

  Loop loop;
  loop.tester.load(app.task);
  loop.tester.start();
  loop.tester.run_for(sim::us(300));

  ChaosSnapshot snap;
  snap.events_executed = loop.tester.events().executed();
  snap.matched = loop.tester.query_matched(app.q_per_key);
  for (std::uint16_t p = 0; p < 2; ++p) {
    const auto& port = loop.tester.asic().port(p);
    snap.port_counters.push_back(port.tx_packets());
    snap.port_counters.push_back(port.tx_bytes());
    snap.port_counters.push_back(port.rx_packets());
    snap.port_counters.push_back(port.rx_bytes());
  }
  for (const auto& c : loop.tester.drop_report()) snap.drops.emplace_back(c.source, c.count);
  for (const std::string& name : loop.tester.asic().registers().names()) {
    const auto& arr = loop.tester.asic().registers().get(name);
    std::vector<std::uint64_t> cells(arr.size());
    for (std::size_t i = 0; i < arr.size(); ++i) cells[i] = arr.read(i);
    snap.registers.emplace_back(name, std::move(cells));
  }
  return snap;
}

TEST(ChaosDeterminism, IdenticalSeedsProduceBitIdenticalRuns) {
  const ChaosSnapshot a = chaos_golden_run();
  const ChaosSnapshot b = chaos_golden_run();
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.matched, b.matched);
  EXPECT_EQ(a.port_counters, b.port_counters);
  EXPECT_EQ(a.drops, b.drops);
  ASSERT_EQ(a.registers.size(), b.registers.size());
  for (std::size_t i = 0; i < a.registers.size(); ++i) {
    EXPECT_EQ(a.registers[i].first, b.registers[i].first);
    EXPECT_EQ(a.registers[i].second, b.registers[i].second)
        << "register array " << a.registers[i].first << " diverged";
  }
  EXPECT_EQ(a, b);
  // The run must actually have exercised the chaos paths to prove anything.
  std::uint64_t fault_drops = 0;
  for (const auto& [source, count] : a.drops) {
    if (source.find("fault_") != std::string::npos) fault_drops += count;
  }
  EXPECT_GT(fault_drops, 0u);
  EXPECT_GT(a.matched, 0u);
}

}  // namespace
}  // namespace ht
