file(REMOVE_RECURSE
  "libht_ntapi.a"
)
