#include "htpr/false_positive.hpp"

#include <unordered_map>

#include "net/fields.hpp"

namespace ht::htpr {

CollisionAnalysis analyze_collisions(const CounterHashParams& hash,
                                     const std::vector<std::vector<std::uint64_t>>& key_space) {
  CollisionAnalysis out;
  out.keys_analyzed = key_space.size();

  // Group keys by fingerprint; only same-fingerprint keys can collide.
  struct Placement {
    std::size_t key_index;
    std::size_t b1;
    std::size_t b2;
  };
  std::unordered_map<std::uint64_t, std::vector<Placement>> by_fp;
  by_fp.reserve(key_space.size());
  for (std::size_t i = 0; i < key_space.size(); ++i) {
    const auto& key = key_space[i];
    const std::uint64_t fp = hash.fingerprint(key);
    const std::size_t b1 = hash.bucket1(key);
    by_fp[fp].push_back({i, b1, hash.alt_bucket(b1, fp)});
  }

  double key_bits = 0;
  for (const auto f : hash.key_fields) key_bits += net::field_width(f);

  for (auto& [fp, placements] : by_fp) {
    if (placements.size() < 2) continue;
    // Within a fingerprint group, keys whose bucket sets intersect are
    // mutually confusable. Union the overlapping ones into clusters and
    // send every member but the first to the exact table. Fingerprint
    // groups are tiny (collisions are rare), so quadratic scan is fine.
    std::vector<int> cluster(placements.size(), -1);
    int next_cluster = 0;
    for (std::size_t a = 0; a < placements.size(); ++a) {
      for (std::size_t b = a + 1; b < placements.size(); ++b) {
        const bool overlap = placements[a].b1 == placements[b].b1 ||
                             placements[a].b1 == placements[b].b2 ||
                             placements[a].b2 == placements[b].b1 ||
                             placements[a].b2 == placements[b].b2;
        if (!overlap) continue;
        if (cluster[a] < 0 && cluster[b] < 0) {
          cluster[a] = cluster[b] = next_cluster++;
        } else if (cluster[a] < 0) {
          cluster[a] = cluster[b];
        } else if (cluster[b] < 0) {
          cluster[b] = cluster[a];
        } else if (cluster[a] != cluster[b]) {
          // Merge: relabel b's cluster to a's.
          const int from = cluster[b], to = cluster[a];
          for (auto& c : cluster) {
            if (c == from) c = to;
          }
        }
      }
    }
    // Emit all but the first member of each cluster.
    std::unordered_map<int, bool> seen;
    for (std::size_t a = 0; a < placements.size(); ++a) {
      if (cluster[a] < 0) continue;
      auto [it, first] = seen.try_emplace(cluster[a], true);
      if (first) {
        ++out.collision_clusters;
        continue;  // the representative stays in the cuckoo arrays
      }
      out.exact_keys.push_back(key_space[placements[a].key_index]);
    }
  }

  out.exact_table_bytes =
      static_cast<std::size_t>(static_cast<double>(out.exact_keys.size()) * (key_bits + 64) / 8.0);
  return out;
}

}  // namespace ht::htpr
