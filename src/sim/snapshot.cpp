#include "sim/snapshot.hpp"

#include <bit>
#include <cstring>

namespace ht::sim {
namespace {

constexpr char kMagic[8] = {'H', 'T', 'S', 'N', 'A', 'P', '\0', '\0'};

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

// --- writer ----------------------------------------------------------------

void SnapshotWriter::begin_section(const std::string& name) {
  for (const auto& [n, bytes] : sections_) {
    if (n == name) throw SnapshotError(name, "duplicate snapshot section");
  }
  sections_.emplace_back(name, std::vector<std::uint8_t>{});
}

std::vector<std::uint8_t>& SnapshotWriter::payload() {
  if (sections_.empty()) throw SnapshotError("", "write before begin_section");
  return sections_.back().second;
}

void SnapshotWriter::u8(std::uint8_t v) { payload().push_back(v); }
void SnapshotWriter::u32(std::uint32_t v) { put_u32(payload(), v); }
void SnapshotWriter::u64(std::uint64_t v) { put_u64(payload(), v); }
void SnapshotWriter::f64(double v) { put_u64(payload(), std::bit_cast<std::uint64_t>(v)); }

void SnapshotWriter::str(const std::string& s) {
  auto& out = payload();
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

void SnapshotWriter::u64_vec(const std::vector<std::uint64_t>& v) {
  auto& out = payload();
  put_u64(out, v.size());
  for (const std::uint64_t x : v) put_u64(out, x);
}

void SnapshotWriter::u64_map(const std::map<std::uint64_t, std::uint64_t>& m) {
  auto& out = payload();
  put_u64(out, m.size());
  for (const auto& [k, v] : m) {
    put_u64(out, k);
    put_u64(out, v);
  }
}

std::uint64_t SnapshotWriter::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& [name, bytes] : sections_) {
    h = fnv1a64(reinterpret_cast<const std::uint8_t*>(name.data()), name.size(), h);
    h = fnv1a64(bytes.data(), bytes.size(), h);
  }
  return h;
}

std::vector<std::uint8_t> SnapshotWriter::finish() {
  std::vector<std::uint8_t> out;
  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  put_u32(out, kVersion);
  put_u32(out, static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [name, bytes] : sections_) {
    put_u32(out, static_cast<std::uint32_t>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
    put_u64(out, bytes.size());
    out.insert(out.end(), bytes.begin(), bytes.end());
    put_u64(out, fnv1a64(bytes.data(), bytes.size()));
  }
  put_u64(out, fnv1a64(out.data(), out.size()));
  return out;
}

// --- reader ----------------------------------------------------------------

SnapshotReader::SnapshotReader(std::vector<std::uint8_t> data) : data_(std::move(data)) {
  const auto fail = [](const std::string& what) -> void { throw SnapshotError("", what); };
  if (data_.size() < sizeof(kMagic) + 4 + 4 + 8) fail("snapshot truncated");
  if (std::memcmp(data_.data(), kMagic, sizeof(kMagic)) != 0) fail("bad snapshot magic");
  const std::uint64_t file_sum = get_u64(data_.data() + data_.size() - 8);
  if (fnv1a64(data_.data(), data_.size() - 8) != file_sum) fail("snapshot file checksum mismatch");
  std::size_t p = sizeof(kMagic);
  version_ = get_u32(data_.data() + p);
  p += 4;
  if (version_ != SnapshotWriter::kVersion) {
    fail("unsupported snapshot version " + std::to_string(version_) + " (expected " +
         std::to_string(SnapshotWriter::kVersion) + ")");
  }
  const std::uint32_t count = get_u32(data_.data() + p);
  p += 4;
  const std::size_t end = data_.size() - 8;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (p + 4 > end) fail("section header truncated");
    const std::uint32_t name_len = get_u32(data_.data() + p);
    p += 4;
    if (p + name_len + 8 > end) fail("section name truncated");
    std::string name(reinterpret_cast<const char*>(data_.data() + p), name_len);
    p += name_len;
    const std::uint64_t payload_len = get_u64(data_.data() + p);
    p += 8;
    if (payload_len > end - p || p + payload_len + 8 > end) {
      throw SnapshotError(name, "section payload truncated");
    }
    std::vector<std::uint8_t> bytes(data_.begin() + static_cast<std::ptrdiff_t>(p),
                                    data_.begin() + static_cast<std::ptrdiff_t>(p + payload_len));
    p += payload_len;
    const std::uint64_t sum = get_u64(data_.data() + p);
    p += 8;
    if (fnv1a64(bytes.data(), bytes.size()) != sum) {
      throw SnapshotError(name, "section checksum mismatch");
    }
    index_.emplace(name, sections_.size());
    sections_.emplace_back(std::move(name), std::move(bytes));
  }
  if (p != end) fail("trailing bytes after last section");
}

bool SnapshotReader::has_section(const std::string& name) const {
  return index_.count(name) != 0;
}

std::vector<std::string> SnapshotReader::section_names() const {
  std::vector<std::string> out;
  out.reserve(sections_.size());
  for (const auto& [name, bytes] : sections_) out.push_back(name);
  return out;
}

const std::vector<std::uint8_t>& SnapshotReader::section_payload(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) throw SnapshotError(name, "no such snapshot section");
  return sections_[it->second].second;
}

void SnapshotReader::open_section(const std::string& name) {
  cur_ = &section_payload(name);
  cur_name_ = name;
  pos_ = 0;
}

void SnapshotReader::need(std::size_t n) const {
  if (cur_ == nullptr) throw SnapshotError("", "read before open_section");
  if (pos_ + n > cur_->size()) throw SnapshotError(cur_name_, "read past end of section");
}

std::uint8_t SnapshotReader::u8() {
  need(1);
  return (*cur_)[pos_++];
}

std::uint32_t SnapshotReader::u32() {
  need(4);
  const std::uint32_t v = get_u32(cur_->data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t SnapshotReader::u64() {
  need(8);
  const std::uint64_t v = get_u64(cur_->data() + pos_);
  pos_ += 8;
  return v;
}

double SnapshotReader::f64() { return std::bit_cast<double>(u64()); }

std::string SnapshotReader::str() {
  const std::uint64_t n = u64();
  need(n);
  std::string s(reinterpret_cast<const char*>(cur_->data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<std::uint64_t> SnapshotReader::u64_vec() {
  const std::uint64_t n = u64();
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(u64());
  return v;
}

std::map<std::uint64_t, std::uint64_t> SnapshotReader::u64_map() {
  const std::uint64_t n = u64();
  std::map<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t k = u64();
    m[k] = u64();
  }
  return m;
}

// --- attestation -----------------------------------------------------------

void attest_sections(const SnapshotReader& expected, const SnapshotWriter& actual) {
  for (const auto& [name, rebuilt] : actual.sections()) {
    if (!expected.has_section(name)) {
      throw SnapshotError(name, "section missing from snapshot (format/topology skew)");
    }
    const auto& stored = expected.section_payload(name);
    if (stored == rebuilt) continue;
    std::size_t off = 0;
    const std::size_t n = std::min(stored.size(), rebuilt.size());
    while (off < n && stored[off] == rebuilt[off]) ++off;
    throw SnapshotError(
        name, "restored state diverges from snapshot at byte " + std::to_string(off) +
                  " (stored " + std::to_string(stored.size()) + "B, rebuilt " +
                  std::to_string(rebuilt.size()) + "B) — replay is not reproducing this run");
  }
}

}  // namespace ht::sim
