file(REMOVE_RECURSE
  "libht_htpr.a"
)
