#include "switchcpu/periodic_poller.hpp"

namespace ht::switchcpu {

PeriodicPoller::PeriodicPoller(Controller& controller, std::string reg, sim::TimeNs period)
    : controller_(controller), reg_(std::move(reg)), period_(period) {}

void PeriodicPoller::start() {
  if (running_) return;
  running_ = true;
  poll();
}

void PeriodicPoller::poll() {
  if (!running_) return;
  auto& ev = controller_.asic().events();
  Sample sample;
  sample.requested_at = ev.now();
  controller_.read_counters(reg_, /*batched=*/true,
                            [this, sample](std::vector<std::uint64_t> values) mutable {
                              sample.delivered_at = controller_.asic().events().now();
                              sample.values = std::move(values);
                              samples_.push_back(sample);
                              if (on_sample) on_sample(samples_.back());
                            });
  ev.schedule_in(period_, [this] { poll(); });
}

std::vector<double> PeriodicPoller::rate_series(std::size_t index) const {
  std::vector<double> out;
  if (samples_.size() < 2) return out;
  out.reserve(samples_.size() - 1);
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const double prev = index < samples_[i - 1].values.size()
                            ? static_cast<double>(samples_[i - 1].values[index])
                            : 0.0;
    const double curr =
        index < samples_[i].values.size() ? static_cast<double>(samples_[i].values[index]) : 0.0;
    out.push_back(curr - prev);
  }
  return out;
}

}  // namespace ht::switchcpu
