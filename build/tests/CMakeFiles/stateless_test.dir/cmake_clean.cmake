file(REMOVE_RECURSE
  "CMakeFiles/stateless_test.dir/stateless_test.cpp.o"
  "CMakeFiles/stateless_test.dir/stateless_test.cpp.o.d"
  "stateless_test"
  "stateless_test.pdb"
  "stateless_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stateless_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
