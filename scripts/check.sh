#!/usr/bin/env sh
# Sanitizer gate: configure a dedicated build tree with ASan+UBSan
# (HT_SANITIZE, see the top-level CMakeLists.txt), build everything, and
# run the full ctest suite under the instrumented binaries.
#
#   scripts/check.sh [build-dir] [-- extra ctest args]
#
# Environment:
#   HT_SANITIZE   sanitizer list (default "address,undefined"; "thread"
#                 for TSan — mutually exclusive with ASan)
#   CTEST_PARALLEL_LEVEL / JOBS   parallelism (default: nproc)
set -eu

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-sanitize}"
[ $# -gt 0 ] && shift
[ "${1:-}" = "--" ] && shift

SAN="${HT_SANITIZE:-address,undefined}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

echo "== configuring ${BUILD_DIR} with -fsanitize=${SAN}"
cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHT_SANITIZE="${SAN}" >/dev/null

echo "== building (${JOBS} jobs)"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== ctest under ${SAN}"
# halt_on_error makes UBSan findings fail the test instead of just logging.
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
  ctest --test-dir "${BUILD_DIR}" --output-on-failure "$@"

echo "== clean under ${SAN}"
