// Tests for the MoonGen baseline model, Lua inventory, and cost model.
#include <gtest/gtest.h>

#include "baseline/cost_model.hpp"
#include "baseline/lua_inventory.hpp"
#include "baseline/moongen.hpp"
#include "sim/stats.hpp"

namespace ht::baseline {
namespace {

TEST(MoonGenModel, EightCoresReachEightyGbps) {
  // Fig 10b: one core per 10Gbps, 80Gbps with 8 cores (64B packets,
  // eight 10G ports).
  const MoonGenModel m;
  EXPECT_NEAR(m.throughput_gbps(64, 8, 8, 10.0), 80.0, 1.0);
  EXPECT_NEAR(m.throughput_gbps(64, 1, 8, 10.0), 10.0, 0.6);
  EXPECT_NEAR(m.throughput_gbps(64, 4, 8, 10.0), 40.0, 2.0);
}

TEST(MoonGenModel, SingleCoreBelowLineRateForSmallPackets) {
  // Fig 9b: on a 40G port, one core cannot generate 64B at line rate but
  // reaches line rate for large packets.
  const MoonGenModel m;
  EXPECT_LT(m.throughput_gbps(64, 1, 1, 40.0), 12.0);
  EXPECT_LT(m.throughput_gbps(64, 1, 1, 40.0), 40.0 * 0.5);
  EXPECT_NEAR(m.throughput_gbps(1500, 1, 1, 40.0), 40.0, 1.0);
  // One core's pps bound: throughput grows with size until line rate.
  EXPECT_GT(m.throughput_gbps(256, 1, 1, 40.0), 2.5 * m.throughput_gbps(64, 1, 1, 40.0));
}

TEST(MoonGenModel, PortBoundsThroughput) {
  const MoonGenModel m;
  EXPECT_LE(m.throughput_gbps(64, 32, 1, 40.0), 40.0 + 1e-9);
}

TEST(MoonGenGenerator, HwRateControlIsCoarserThanAsic) {
  // Fig 11's claim, relative form: the NIC-paced generator shows
  // inter-departure errors an order of magnitude above the ASIC timer's
  // few-ns precision.
  sim::EventQueue ev;
  sim::Port tx(ev, 0, 40.0), rx(ev, 1, 40.0);
  tx.connect(&rx);
  rx.connect(&tx);
  std::vector<std::uint64_t> tx_times;
  tx.on_transmit = [&](const net::Packet&, sim::TimeNs t) { tx_times.push_back(t); };

  MoonGenGenerator::Config cfg;
  cfg.target_pps = 1e6;  // 1us interval
  cfg.rate_control = MoonGenGenerator::RateControl::kHardwareNic;
  MoonGenGenerator gen(ev, tx, cfg);
  gen.start();
  ev.run_until(sim::ms(50));
  gen.stop();

  ASSERT_GT(tx_times.size(), 10'000u);
  const auto deltas = sim::inter_departure_times(tx_times);
  const auto m = sim::compute_error_metrics(deltas, 1'000.0);
  EXPECT_GT(m.mae, 20.0);    // an order of magnitude above the ASIC's ~2-6ns
  EXPECT_LT(m.mae, 500.0);   // but still pacing at roughly the right rate
  EXPECT_GT(m.rmse, 25.0);
}

TEST(MoonGenGenerator, SoftwarePacingIsBursty) {
  sim::EventQueue ev;
  sim::Port tx(ev, 0, 40.0), rx(ev, 1, 40.0);
  tx.connect(&rx);
  rx.connect(&tx);
  std::vector<std::uint64_t> tx_times;
  tx.on_transmit = [&](const net::Packet&, sim::TimeNs t) { tx_times.push_back(t); };

  MoonGenGenerator::Config cfg;
  cfg.target_pps = 1e6;
  cfg.rate_control = MoonGenGenerator::RateControl::kSoftware;
  MoonGenGenerator gen(ev, tx, cfg);
  gen.start();
  ev.run_until(sim::ms(50));
  gen.stop();

  const auto deltas = sim::inter_departure_times(tx_times);
  const auto m = sim::compute_error_metrics(deltas, 1'000.0);
  // Batched bursts: back-to-back packets then long sleeps — huge MAD.
  EXPECT_GT(m.mad, 500.0);
}

TEST(MoonGenGenerator, RespectsCoreCap) {
  sim::EventQueue ev;
  sim::Port tx(ev, 0, 40.0), rx(ev, 1, 40.0);
  tx.connect(&rx);
  rx.connect(&tx);
  MoonGenGenerator::Config cfg;
  cfg.target_pps = 100e6;  // far beyond one core
  cfg.cores = 1;
  MoonGenGenerator gen(ev, tx, cfg);
  gen.start();
  ev.run_until(sim::ms(10));
  gen.stop();
  // ~14.88 Mpps cap -> ~148.8K packets in 10ms.
  EXPECT_LT(gen.emitted(), 180'000u);
  EXPECT_GT(gen.emitted(), 120'000u);
}

TEST(MoonGenModel, SwTimestampsInflateDelay) {
  const MoonGenModel m;
  sim::Rng rng(1);
  sim::RunningStats s;
  for (int i = 0; i < 5000; ++i) {
    s.push(MoonGenGenerator::sw_timestamped_delay_ns(m, 700.0, rng));
  }
  // Fig 18: software timestamping deviates by ~3x on sub-us true delays.
  EXPECT_GT(s.mean(), 3.0 * 700.0);
  EXPECT_GT(s.stddev(), 100.0);
}

TEST(LuaInventory, AppsPresentWithPlausibleSizes) {
  ASSERT_EQ(lua_apps().size(), 4u);
  // Table 5's right column: 43 / 71 / 48 / 63 lines. Our recreations of
  // the scripts should land in the same range.
  for (const auto& app : lua_apps()) {
    const auto loc = count_lua_loc(app.source);
    EXPECT_GE(loc, 35u) << app.name;
    EXPECT_LE(loc, 90u) << app.name;
  }
  EXPECT_NE(find_lua_app("throughput"), nullptr);
  EXPECT_EQ(find_lua_app("nonexistent"), nullptr);
}

TEST(LuaInventory, LocCountingRules) {
  EXPECT_EQ(count_lua_loc("-- comment only\n\n"), 0u);
  EXPECT_EQ(count_lua_loc("a = 1\n-- c\nb = 2"), 2u);
}

TEST(CostModel, ReproducesTable6) {
  const CostModel c;
  EXPECT_NEAR(c.moongen_cost_per_tbps_usd(), 42'000.0, 1.0);
  EXPECT_NEAR(c.moongen_power_per_tbps_w(), 7'200.0, 1.0);
  EXPECT_NEAR(c.saving_usd_per_tbps(), 38'400.0, 1.0);
  EXPECT_NEAR(c.saving_w_per_tbps(), 7'050.0, 1.0);
  // §7.4: a 6.5Tbps switch replaces 81 8-core servers.
  EXPECT_EQ(c.servers_replaced(6.5), 81u);
}

}  // namespace
}  // namespace ht::baseline
