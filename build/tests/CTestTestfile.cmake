# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/rmt_test[1]_include.cmake")
include("/root/repo/build/tests/regfifo_test[1]_include.cmake")
include("/root/repo/build/tests/htps_test[1]_include.cmake")
include("/root/repo/build/tests/htpr_test[1]_include.cmake")
include("/root/repo/build/tests/stateless_test[1]_include.cmake")
include("/root/repo/build/tests/ntapi_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/dut_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/ntapi_text_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/switchcpu_test[1]_include.cmake")
include("/root/repo/build/tests/newproto_test[1]_include.cmake")
include("/root/repo/build/tests/poller_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/p4gen_test[1]_include.cmake")
