#include "rmt/fastpath/engine.hpp"

#include "net/headers.hpp"

namespace ht::rmt::fastpath {

void Engine::bind(SwitchAsic& asic, htps::Sender& sender, htpr::Receiver& receiver,
                  const FusedPlan& plan) {
  asic_ = &asic;
  sender_ = &sender;
  receiver_ = &receiver;
  tmpl_.clear();
  tmpl_.resize(sender.template_count());
  fused_templates_ = 0;
  fallback_templates_ = 0;

  for (std::uint32_t t = 0; t < tmpl_.size(); ++t) {
    const TemplateFusion verdict =
        t < plan.templates.size() ? plan.templates[t] : TemplateFusion{.template_id = t};
    bind_template(t, verdict);
  }

  // Fast-path observability (satellite of the fused-apply work): task- and
  // packet-level counters on the device registry, so `ntapi_cli stats`
  // shows whether a run actually took the fused path.
  auto& m = asic.metrics();
  fused_pkts_ = &m.counter("ht_fastpath_fused_pkts_total",
                           {.help = "pipeline passes executed by the fused fast path"});
  auto& fused_tasks = m.counter(
      "ht_fastpath_fused_tasks_total",
      {.help = "loaded tasks whose every template runs the fused fast path"});
  auto& fallback_tasks = m.counter(
      "ht_fastpath_fallback_tasks_total",
      {.help = "loaded tasks with at least one template on the interpreted fallback path"});
  // A receive-only task (no templates) has no per-packet walk to fuse;
  // it counts as fused vacuously, mirroring FusedPlan::all_fusable().
  if (fallback_templates_ == 0) {
    fused_tasks.inc();
  } else {
    fallback_tasks.inc();
  }
}

void Engine::bind_template(std::uint32_t tid, const TemplateFusion& verdict) {
  TemplateState& ts = tmpl_[tid];
  ts.blockers = verdict.blockers;
  const htps::TemplateConfig& cfg = sender_->config(tid);

  // Slot table: parse the template prototype once with the task's real
  // parser. Replicas are byte-clones of the prototype until the editor
  // runs, so the parse structure (header offsets, field homes) is an
  // install-time constant of the class.
  const auto proto = net::make_packet(cfg.spec.materialize());
  const Phv pphv = asic_->parser().parse(proto);
  const auto& reg = net::FieldRegistry::instance();
  for (std::size_t i = 0; i < net::kFieldCount; ++i) {
    const auto f = static_cast<net::FieldId>(i);
    const net::FieldInfo& fi = reg.info(f);
    FieldSlot& s = ts.slots.slots[i];
    if (fi.header == net::HeaderKind::kNone) {
      // Metadata: mirror exactly what Parser::parse loads from the
      // simulation layer; everything else reads 0 until written, like an
      // unloaded PHV container.
      switch (f) {
        case net::FieldId::kMetaIngressPort:
          s.kind = FieldSlot::Kind::kIngressPort;
          break;
        case net::FieldId::kMetaIngressTstamp:
          s.kind = FieldSlot::Kind::kIngressTstamp;
          break;
        case net::FieldId::kMetaTemplateId:
          s.kind = FieldSlot::Kind::kTemplateId;
          break;
        case net::FieldId::kPktLen:
          s.kind = FieldSlot::Kind::kPktLen;
          break;
        case net::FieldId::kMetaEgressPort:
          s.kind = FieldSlot::Kind::kEgressPort;
          break;
        default:
          s.kind = FieldSlot::Kind::kScratch;
          break;
      }
      continue;
    }
    const int off = pphv.header_offset[static_cast<std::size_t>(fi.header)];
    if (off >= 0 && pphv.header_valid(fi.header)) {
      s.kind = FieldSlot::Kind::kWire;
      s.bit = static_cast<std::uint32_t>(off) * 8 + fi.bit_offset;
      s.width = static_cast<std::uint8_t>(fi.bit_width);
    } else {
      // Field of an unparsed header: Phv::set would mark it modified but
      // the deparser skips it (no parse offset) — scratch matches that.
      s.kind = FieldSlot::Kind::kScratch;
    }
  }

  // Written-field sanity (defense in depth behind plan.cpp): every field
  // the editor writes must resolve to wire bytes or scratch.
  for (const htps::EditOp& op : cfg.edits) {
    if (op.kind == htps::EditOp::Kind::kRecordTimestamp) continue;  // writes a register
    const FieldSlot::Kind k = ts.slots.slots[FastCtx::idx(op.field)].kind;
    if (k == FieldSlot::Kind::kWire) {
      ts.wire_writes = true;
    } else if (k != FieldSlot::Kind::kScratch) {
      ts.blockers.push_back("edit writes intrinsic metadata field " +
                            std::string(net::field_name(op.field)));
    }
  }

  // Egress program: walk the installed pipeline in order, resolving each
  // table's gate and match for this class at bind time. Tables whose gate
  // is statically false for the class are dropped entirely — matching the
  // interpreted walk, which books nothing for gated-off tables.
  htps::Sender* snd = sender_;
  htpr::Receiver* rcv = receiver_;
  for (const PipelineNode& node : asic_->egress().nodes()) {
    const TableHints& h = node.table->hints();
    switch (h.role) {
      case TableHints::Role::kHtpsEditor: {
        // Gate (front port + template packet) holds for every packet the
        // fused egress accepts; the exact match on template id hits.
        FusedStep<FastCtx> st;
        st.table = node.table.get();
        st.hit = true;
        st.body = [snd, tid](FastCtx& c) { snd->egress_core(tid, c); };
        ts.egress_prog.steps.push_back(std::move(st));
        break;
      }
      case TableHints::Role::kHtprSent: {
        if (h.template_id != tid) break;  // gate statically false for this class
        // Empty-key table: the interpreted apply counts a miss and runs
        // the default action.
        FusedStep<FastCtx> st;
        st.table = node.table.get();
        st.hit = false;
        const std::size_t q = h.query_index;
        st.body = [rcv, q](FastCtx& c) { rcv->query_core(q, c); };
        ts.egress_prog.steps.push_back(std::move(st));
        break;
      }
      default:
        ts.blockers.push_back("unrecognized egress table '" + node.table->name() + "'");
        break;
    }
  }

  // Ingress program for recirculating template packets (the hot loop; the
  // one-time CPU arrival stays interpreted). Received-traffic queries gate
  // on front-panel ingress ports, statically false here.
  for (const PipelineNode& node : asic_->ingress().nodes()) {
    const TableHints& h = node.table->hints();
    switch (h.role) {
      case TableHints::Role::kHtpsSender: {
        FusedStep<FastCtx> st;
        st.table = node.table.get();
        st.hit = true;
        st.body = [snd, tid](FastCtx& c) { snd->ingress_core(tid, c); };
        ts.ingress_prog.steps.push_back(std::move(st));
        break;
      }
      case TableHints::Role::kHtprReceived:
        break;  // gate statically false on recirculation ports
      case TableHints::Role::kHtprMaintenance:
        // Runs after the sender step in pipeline order (Receiver installs
        // after Sender); executed interpreted on a scratch context because
        // CounterStore::maintenance_pass needs a full ActionContext.
        ts.maintenance_tbl = node.table.get();
        break;
      default:
        ts.blockers.push_back("unrecognized ingress table '" + node.table->name() + "'");
        break;
    }
  }

  // Checksum strategy: when no edit touches wire bytes, every front-port
  // replica carries prototype bytes, so the deparser's checksum fix
  // reduces to an install-time byte-patch list.
  if (ts.blockers.empty() && !ts.wire_writes) {
    const auto fixed = net::make_packet(cfg.spec.materialize());
    net::fix_checksums(*fixed);
    const auto a = proto->bytes();
    const auto b = fixed->bytes();
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
      if (a[i] != b[i]) {
        ts.patches.push_back({static_cast<std::uint32_t>(i), b[i]});
      }
    }
  }

  if (ts.blockers.empty()) {
    ts.fused = true;
    ++fused_templates_;
  } else {
    ++fallback_templates_;
  }
}

bool Engine::try_ingress(const net::PacketPtr& pkt, IntrinsicMeta& out) {
  const net::PacketMeta& m = pkt->meta();
  if (!m.is_template) return false;
  const std::uint32_t tid = m.template_id;
  if (tid >= tmpl_.size()) return false;
  TemplateState& ts = tmpl_[tid];
  if (!ts.fused) return false;
  const auto iport = static_cast<std::uint16_t>(m.ingress_port);
  if (!asic_->is_recirc_port(iport)) return false;  // CPU arrival: interpreted, once

  FastCtx c;
  c.pkt = pkt.get();
  c.slot_table = &ts.slots;
  c.regs = &asic_->registers();
  c.rng_ptr = &asic_->rng();
  c.now_ns = asic_->events().now();
  c.iport = iport;
  c.scratch = ts.scratch.data();
  out = IntrinsicMeta{};  // fresh-PHV default: drop unless the program says otherwise
  c.intr = &out;
  asic_->ingress().apply_fused(ts.ingress_prog, c);
  c.clear_scratch();
  if (ts.maintenance_tbl != nullptr) {
    ActionContext actx = asic_->make_ctx(maintenance_phv_);
    ts.maintenance_tbl->apply(actx);
  }
  fused_pkts_->inc();
  return true;
}

bool Engine::try_egress(const net::PacketPtr& pkt, std::uint16_t egress_port,
                        std::uint16_t rid, sim::TimeNs now) {
  (void)rid;  // informational in the interpreted path too (nothing reads it)
  const net::PacketMeta& m = pkt->meta();
  if (!m.is_template) return false;
  const std::uint32_t tid = m.template_id;
  if (tid >= tmpl_.size()) return false;
  TemplateState& ts = tmpl_[tid];
  if (!ts.fused) return false;

  if (egress_port >= asic_->port_count()) {
    // Recirculation/CPU egress: every egress-side gate requires a
    // front-panel port, so the interpreted pass fires no table, writes no
    // byte, and skips the checksum engine — a statically-proven no-op.
    fused_pkts_->inc();
    return true;
  }

  FastCtx c;
  c.pkt = pkt.get();
  c.slot_table = &ts.slots;
  c.regs = &asic_->registers();
  c.rng_ptr = &asic_->rng();
  c.now_ns = now;
  c.iport = static_cast<std::uint16_t>(m.ingress_port);
  c.eport = egress_port;
  c.scratch = ts.scratch.data();
  asic_->egress().apply_fused(ts.egress_prog, c);
  c.clear_scratch();
  if (ts.wire_writes) {
    net::fix_checksums(*pkt);
  } else {
    auto bytes = pkt->bytes();
    for (const CsumPatch& p : ts.patches) bytes[p.offset] = p.value;
  }
  fused_pkts_->inc();
  return true;
}

}  // namespace ht::rmt::fastpath
