// LinkMailbox: the single cross-shard edge of the sharded engine.
//
// When a link's two ports live on different shards (DESIGN.md §13), the
// serialized packets cannot be delivered through a locally scheduled
// event — the destination shard's clock may already be past the arrival
// time within the current epoch. Instead the source port stamps each
// packet with its future arrival time (TX start + serialization +
// propagation, computed identically to the intra-shard path) and pushes
// it here at send time; the ShardGroup drains every mailbox at the epoch
// barrier, in link order, and schedules the deliveries on the
// destination shard's queue. Conservative lookahead (epoch length <=
// min link serialization + propagation) guarantees every stamped
// arrival is at or after the barrier time, so causality never breaks.
//
// Concurrency contract: exactly one producer (the source shard's worker,
// during an epoch) and one consumer (the barrier thread, between
// epochs). The fixed ring carries the steady-state flow lock-free;
// pushes beyond the ring capacity spill to an unbounded vector and are
// counted as backpressure — never dropped, so results stay independent
// of the ring size. FIFO order is preserved across the spill (ring
// entries drain first, spill entries after; within one epoch every push
// after the first spill also spills).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace ht::sim {

class LinkMailbox {
 public:
  /// One cross-shard packet: ownership of a single reference travels
  /// through the ring as a raw pointer (PacketPtr::detach/adopt_detached).
  struct Handoff {
    net::Packet* pkt = nullptr;
    TimeNs arrival = 0;
  };

  struct Stats {
    std::uint64_t pushed = 0;        ///< total packets handed off
    std::uint64_t backpressure = 0;  ///< pushes that overflowed to the spill list
    std::uint64_t high_water = 0;    ///< max handoffs buffered at a barrier
  };

  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit LinkMailbox(std::size_t capacity = 1024);
  ~LinkMailbox();
  LinkMailbox(const LinkMailbox&) = delete;
  LinkMailbox& operator=(const LinkMailbox&) = delete;

  /// Producer side: hand one packet reference to the mailbox, stamped
  /// with its absolute arrival time at the far port.
  void push(net::PacketPtr pkt, TimeNs arrival);

  /// Consumer side (epoch barrier only): pop everything in FIFO push
  /// order. `fn(net::PacketPtr, TimeNs arrival)` receives ownership.
  template <typename Fn>
  std::size_t drain(Fn&& fn) {
    std::size_t n = 0;
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t buffered = (tail - head) + spill_.size();
    if (buffered > stats_.high_water) stats_.high_water = buffered;
    while (head != tail) {
      Handoff& h = ring_[head & mask_];
      fn(net::PacketPtr::adopt_detached(h.pkt), h.arrival);
      h.pkt = nullptr;
      ++head;
      ++n;
    }
    head_.store(head, std::memory_order_release);
    for (Handoff& h : spill_) {
      fn(net::PacketPtr::adopt_detached(h.pkt), h.arrival);
      h.pkt = nullptr;
      ++n;
    }
    spill_.clear();
    return n;
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) == tail_.load(std::memory_order_acquire) &&
           spill_.empty();
  }
  std::size_t capacity() const { return mask_ + 1; }
  const Stats& stats() const { return stats_; }

 private:
  std::vector<Handoff> ring_;
  std::size_t mask_ = 0;
  /// Consumer cursor; producer reads it (acquire) to detect a full ring.
  alignas(64) std::atomic<std::size_t> head_{0};
  /// Producer cursor; consumer reads it (acquire) to see published slots.
  alignas(64) std::atomic<std::size_t> tail_{0};
  /// Overflow entries, in push order after the ring filled. Touched by
  /// the producer during an epoch and the consumer at the barrier; the
  /// barrier's synchronization separates the two phases.
  std::vector<Handoff> spill_;
  Stats stats_;
};

}  // namespace ht::sim
