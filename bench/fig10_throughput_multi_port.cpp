// Figure 10: multi-port throughput.
//
//  (a) HyperTester: adding 100G ports keeps every port at line rate
//      (400Gbps with the testbed's four ports).
//  (b) MoonGen on eight 10G ports: ~10Gbps per core, 80Gbps with 8 cores.
#include "apps/tasks.hpp"
#include "baseline/moongen.hpp"
#include "common.hpp"

int main() {
  using namespace ht;

  bench::headline("Figure 10(a): HyperTester multi-port (100G each, 64B)",
                  "line rate as ports are added; 400Gbps with 4 ports");
  bench::row("%8s %14s %16s", "ports", "total (Gbps)", "per-port (Gbps)");
  for (std::size_t nports = 1; nports <= 4; ++nports) {
    bench::Testbed tb(5, 100.0);
    std::vector<std::uint16_t> ports;
    for (std::size_t p = 1; p <= nports; ++p) ports.push_back(static_cast<std::uint16_t>(p));
    auto app = apps::throughput_test(0x02020202, 0x01010101, ports, 64, 0);
    tb.tester->load(app.task);
    tb.tester->start();
    tb.tester->run_for(sim::ms(2));
    double total = 0;
    for (const auto p : ports) total += tb.tester->asic().port(p).tx_line_rate_gbps();
    bench::row("%8zu %14.1f %16.1f", nports, total, total / static_cast<double>(nports));
  }

  bench::headline("Figure 10(b): MoonGen multi-core (eight 10G ports, 64B)",
                  "~10Gbps per core; 80Gbps with 8 cores");
  const baseline::MoonGenModel mg;
  bench::row("%8s %14s", "cores", "total (Gbps)");
  for (std::size_t cores = 1; cores <= 8; ++cores) {
    bench::row("%8zu %14.1f", cores, mg.throughput_gbps(64, cores, 8, 10.0));
  }
  return 0;
}
