// Parser for the textual NTAPI (Table 2).
//
// Grammar (statements in dependency order, as in the paper's examples):
//
//   program   := statement*
//   statement := NAME '=' ('trigger' | 'query') '(' [NAME] ')' chain*
//   chain     := '.' method '(' args ')'
//
// Trigger methods:
//   set(field, value)            set([f1, f2, ...], [v1, v2, ...])
//   payload("bytes")
// Query methods:
//   filter(field CMP value)      filter(count CMP n)
//   map(field)                   map([k1, k2, ...])    map([k...], value)
//   reduce(sum|count|max|min)    distinct()
//   monitor_ports([p1, p2])      store(buckets, digest_bits)
//
// Values: integers (with ns/us/ms/s/K/M suffixes), IPv4 literals,
// protocol names (udp/tcp/icmp), TCP flag sums (SYN+ACK), [arrays],
// range(start, end, step), random('U'|'N'|'E', p1[, p2]), and query-field
// references with offsets (Q1.seq_no + 1) inside query-based triggers.
//
// Field names: canonical dotted names (tcp.dport) always work; the
// paper's short aliases (dip, sip, proto, sport, dport, flag, seq_no,
// ack_no, ...) resolve against the trigger's protocol (set(proto, ...)),
// defaulting to UDP — matching §4's examples.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <string_view>

#include "ntapi/task.hpp"

namespace ht::ntapi::text {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line, int column);
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_, column_;
};

struct ParsedProgram {
  Task task;
  std::map<std::string, TriggerHandle> triggers;
  std::map<std::string, QueryHandle> queries;

  TriggerHandle trigger(const std::string& name) const;
  QueryHandle query(const std::string& name) const;
};

/// Parse a complete NTAPI program. Throws ParseError (or LexError) on
/// malformed input; semantic validation still happens at compile time.
ParsedProgram parse_ntapi(std::string_view source, std::string task_name = "ntapi_script");

/// Resolve a field name (canonical or paper-style alias) against an L4
/// context. Returns nullopt for unknown names.
std::optional<net::FieldId> resolve_field(std::string_view name, net::HeaderKind l4);

}  // namespace ht::ntapi::text
