#include "sim/event_queue.hpp"

#include <algorithm>

namespace ht::sim {

namespace {

// The overflow heap is ordered by timestamp only: sequence ties are
// restored by the bucket sort when an epoch is swept into the wheel.

/// First set bit at index >= `from`, or -1.
template <std::size_t Words>
int find_set_bit(const std::array<std::uint64_t, Words>& bm, unsigned from) {
  unsigned word = from >> 6;
  std::uint64_t w = bm[word] & (~std::uint64_t{0} << (from & 63u));
  for (;;) {
    if (w != 0) {
      return static_cast<int>(word * 64 + static_cast<unsigned>(std::countr_zero(w)));
    }
    if (++word >= bm.size()) return -1;
    w = bm[word];
  }
}

}  // namespace

EventQueue::~EventQueue() { drop_pending(); }

void EventQueue::drop_pending() {
  const auto drop_list = [this](Node*& head) {
    Node* n = head;
    while (n != nullptr) {
      Node* next = n->next;
      n->drop(n);
      free_node(n);
      n = next;
    }
    head = nullptr;
  };
  drop_list(ready_head_);
  ready_tail_ = nullptr;
  for (auto& level : wheel_) {
    for (Node*& head : level) drop_list(head);
  }
  for (auto& level : bits_) level.fill(0);
  for (Node* n : overflow_) {
    n->drop(n);
    free_node(n);
  }
  overflow_.clear();
  pending_ = 0;
}

EventQueue::Node* EventQueue::alloc_node() {
  Node* n = nullptr;
  if (free_list_ != nullptr) {
    n = free_list_;
    free_list_ = n->next;
    ++slab_stats_.hits;
  } else {
    if (chunk_remaining_ == 0) {
      chunks_.emplace_back(new Node[kChunkNodes]);
      chunk_next_ = chunks_.back().get();
      chunk_remaining_ = kChunkNodes;
    }
    n = chunk_next_++;
    --chunk_remaining_;
    ++slab_stats_.misses;
  }
  ++slab_stats_.live;
  if (slab_stats_.live > slab_stats_.high_water) slab_stats_.high_water = slab_stats_.live;
  return n;
}

void EventQueue::free_node(Node* n) {
  --slab_stats_.live;
  n->next = free_list_;
  free_list_ = n;
}

void EventQueue::enqueue(Node* n) {
  ++pending_;
  // A bucket currently draining at this exact timestamp: append in place.
  // The new node's sequence is larger than every node already in the ready
  // list, so FIFO order is preserved without a re-sort.
  if (ready_head_ != nullptr && n->at == ready_tail_->at) {
    n->next = nullptr;
    ready_tail_->next = n;
    ready_tail_ = n;
    return;
  }
  wheel_insert(n);
}

void EventQueue::wheel_insert(Node* n) {
  const TimeNs at = n->at;
  for (unsigned level = 0; level < kLevels; ++level) {
    // A node belongs to the finest level whose parent block it shares with
    // the cursor: there its slot index resolves the timestamp exactly
    // enough to never fire early.
    const unsigned parent_shift = kLevelBits * (level + 1);
    if ((at >> parent_shift) == (cursor_ >> parent_shift)) {
      const unsigned shift = kLevelBits * level;
      const auto slot = static_cast<std::size_t>((at >> shift) & (kSlots - 1));
      n->next = wheel_[level][slot];
      wheel_[level][slot] = n;
      bits_[level][slot >> 6] |= std::uint64_t{1} << (slot & 63u);
      return;
    }
  }
  n->next = nullptr;
  overflow_.push_back(n);
  std::push_heap(overflow_.begin(), overflow_.end(),
                 [](const Node* a, const Node* b) { return a->at > b->at; });
}

void EventQueue::load_ready(unsigned slot) {
  Node* list = wheel_[0][slot];
  wheel_[0][slot] = nullptr;
  bits_[0][slot >> 6] &= ~(std::uint64_t{1} << (slot & 63u));
  if (list->next == nullptr) {  // common case: a single event in the bucket
    ready_head_ = ready_tail_ = list;
    return;
  }
  // Prepend-on-insert plus cascading scrambled the bucket; one sort by
  // sequence restores the exact FIFO schedule order.
  scratch_.clear();
  for (Node* n = list; n != nullptr; n = n->next) scratch_.push_back(n);
  std::sort(scratch_.begin(), scratch_.end(),
            [](const Node* a, const Node* b) { return a->seq < b->seq; });
  for (std::size_t i = 0; i + 1 < scratch_.size(); ++i) scratch_[i]->next = scratch_[i + 1];
  scratch_.back()->next = nullptr;
  ready_head_ = scratch_.front();
  ready_tail_ = scratch_.back();
}

bool EventQueue::take_next_bucket(TimeNs deadline) {
  if (pending_ == 0) return false;
  // Every pending timestamp is >= now_ (run_until only advances the clock
  // past events it has executed), so the cursor may catch up for free.
  if (cursor_ < now_) cursor_ = now_;
  for (;;) {
    // Level 0: if the cursor's level-0 block holds an event, the earliest
    // such slot is the next bucket overall.
    {
      const unsigned from = static_cast<unsigned>(cursor_ & (kSlots - 1));
      const int s = find_set_bit(bits_[0], from);
      if (s >= 0) {
        const TimeNs t = (cursor_ & ~TimeNs{kSlots - 1}) + static_cast<TimeNs>(s);
        if (t > deadline) return false;
        cursor_ = t;
        load_ready(static_cast<unsigned>(s));
        return true;
      }
    }
    // Upper levels: cascade the next occupied slot down one level and
    // rescan. The cursor never advances past `deadline`'s block, so a
    // false return leaves every later insert correctly placed.
    bool cascaded = false;
    for (unsigned level = 1; level < kLevels; ++level) {
      const unsigned shift = kLevelBits * level;
      const unsigned idx = static_cast<unsigned>((cursor_ >> shift) & (kSlots - 1));
      const int j = find_set_bit(bits_[level], idx);
      if (j < 0) continue;
      const TimeNs span = TimeNs{1} << (shift + kLevelBits);
      const TimeNs block_base =
          (cursor_ & ~(span - 1)) | (static_cast<TimeNs>(j) << shift);
      if (block_base > deadline) return false;
      if (cursor_ < block_base) cursor_ = block_base;
      Node* list = wheel_[level][static_cast<std::size_t>(j)];
      wheel_[level][static_cast<std::size_t>(j)] = nullptr;
      bits_[level][static_cast<unsigned>(j) >> 6] &=
          ~(std::uint64_t{1} << (static_cast<unsigned>(j) & 63u));
      while (list != nullptr) {
        Node* next = list->next;
        wheel_insert(list);  // lands strictly below `level` → loop terminates
        list = next;
      }
      cascaded = true;
      break;
    }
    if (cascaded) continue;
    // Wheel fully empty: sweep the next horizon-sized epoch in from the
    // overflow heap and rescan.
    if (overflow_.empty()) return false;
    if (overflow_.front()->at > deadline) return false;
    const TimeNs epoch = overflow_.front()->at >> kHorizonBits;
    cursor_ = overflow_.front()->at;
    const auto later = [](const Node* a, const Node* b) { return a->at > b->at; };
    while (!overflow_.empty() && (overflow_.front()->at >> kHorizonBits) == epoch) {
      std::pop_heap(overflow_.begin(), overflow_.end(), later);
      Node* n = overflow_.back();
      overflow_.pop_back();
      wheel_insert(n);
    }
  }
}

void EventQueue::exec_front() {
  Node* n = ready_head_;
  ready_head_ = n->next;
  if (ready_head_ == nullptr) ready_tail_ = nullptr;
  now_ = n->at;
  --pending_;
  ++executed_;
  n->invoke(*this, n);  // frees the node before running the callable
}

bool EventQueue::step() {
  if (ready_head_ == nullptr && !take_next_bucket(~TimeNs{0})) return false;
  exec_front();
  return true;
}

std::uint64_t EventQueue::run_until(TimeNs deadline) {
  std::uint64_t n = 0;
  for (;;) {
    if (ready_head_ != nullptr) {
      // A bucket can survive a previous call that stopped mid-drain; honor
      // the deadline before executing its remainder.
      if (ready_head_->at > deadline) break;
    } else if (!take_next_bucket(deadline)) {
      break;
    }
    exec_front();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::uint64_t EventQueue::run_all() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

}  // namespace ht::sim
