# Empty compiler generated dependencies file for fig10_throughput_multi_port.
# This may be replaced when dependencies are built.
