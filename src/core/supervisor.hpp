// Supervisor: the run-lifecycle layer (DESIGN.md §14).
//
// A long measurement run must survive the processes running it. The
// Supervisor owns a testbed end to end: it builds it through a
// user-supplied deterministic builder, advances it in heartbeat slices,
// serializes epoch-aligned snapshots (sim/snapshot.hpp), watches a
// progress probe for deadline misses, and — when a tester dies — executes
// a recovery policy:
//
//  * kRestore — rebuild the testbed from scratch and deterministically
//    replay to the newest snapshot whose byte-attestation passes, then
//    continue. Replay-based restore sidesteps the unserializable parts of
//    engine state (in-flight timer-wheel closures): the snapshot is not
//    applied, it is *verified against*, so a successful restore is
//    byte-identical to an uninterrupted run by construction. Snapshots
//    taken after the fault fail attestation and the supervisor walks back
//    to an older one — attestation doubles as the post-fault detector.
//  * kMigrate — the same replay, but the builder is asked for its spare
//    placement variant: the identical logical testbed on different
//    hardware (shards). Because every RNG stream is keyed to a component
//    and never to its placement (DESIGN.md §13), the replayed state
//    attests byte-exactly against the failed tester's snapshot — which is
//    the exactly-once guarantee for merged HTPR results: the spare resumes
//    from a *proven* copy of the dead tester's aggregates, and the
//    MergeRecords pin `resumed >= snapshot` watermarks per query.
//  * kDegrade — keep running with the dead tester and mark the rest of
//    the measurement window invalid in the RecoveryReport. No recovery,
//    full honesty.
//
// Determinism contract: the supervisor always advances the cluster in the
// same heartbeat slices, both live and during replay, so a recovered run
// and a clean run execute the identical deadline sequence — the golden
// crash-recovery tests (tests/recovery_test.cpp) hold their results
// byte-identical (counters, store fingerprints, replica bytes, Prometheus
// text).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "sim/fault.hpp"
#include "sim/snapshot.hpp"

namespace ht {

/// Everything the supervisor runs: a cluster, which tester carries the
/// workload, an optional progress probe, and whatever the builder needs to
/// keep alive alongside (sinks, DUTs). Returned by the builder callback —
/// which must be deterministic: two invocations with the same placement
/// variant produce byte-identical testbeds.
struct Testbed {
  std::unique_ptr<TesterCluster> cluster;
  /// Index of the tester carrying the measurement (the crash victim the
  /// supervisor watches and the source of the MergeRecords).
  std::size_t active_tester = 0;
  /// Progress probe sampled once per heartbeat; a frozen value is a
  /// deadline miss. Default: active tester's front-panel tx+rx packets.
  std::function<std::uint64_t()> progress;
  /// Keeps builder-owned objects (sinks, DUT endpoints) alive exactly as
  /// long as the cluster they are wired into.
  std::shared_ptr<void> keepalive;
};

struct SupervisorConfig {
  sim::TimeNs heartbeat_ns = 1'000'000;  ///< progress-probe period (1 ms)
  /// Consecutive heartbeats without progress before recovery triggers.
  unsigned miss_threshold = 3;
  sim::TimeNs snapshot_interval_ns = 10'000'000;  ///< restore-point spacing
  enum class Policy : std::uint8_t { kRestore, kMigrate, kDegrade };
  Policy policy = Policy::kRestore;
  /// Placement variant handed to the builder on kMigrate: same logical
  /// testbed, the workload on the spare hardware.
  std::size_t spare_variant = 1;
  /// Process-level faults scheduled into the *initial* build only — a
  /// rebuilt (recovered) testbed replaces the crashed process and does not
  /// re-crash.
  sim::CrashPlan plan;
};

const char* to_string(SupervisorConfig::Policy policy);

/// One recovery attempt or decision, in order.
struct RecoveryAction {
  sim::TimeNs detected_at_ns = 0;   ///< when the miss threshold tripped
  sim::TimeNs restored_to_ns = 0;   ///< snapshot watermark used (0 = none)
  SupervisorConfig::Policy policy = SupervisorConfig::Policy::kRestore;
  bool recovered = false;           ///< false = rejected snapshot / degrade
  std::string detail;
};

/// A measurement window the report declares unreliable: re-executed after
/// a restore, or abandoned under kDegrade.
struct InvalidWindow {
  sim::TimeNs from_ns = 0;
  sim::TimeNs to_ns = 0;
};

/// Exactly-once accounting for one query across a recovery: the replayed
/// (attested) evaluation watermark at the restore point, and the final
/// watermark once the run completed. resumed >= snapshot always holds —
/// results only ever accumulate forward from a proven state, never merge
/// twice.
struct MergeRecord {
  std::string query;
  std::uint64_t snapshot_watermark = 0;
  std::uint64_t resumed_watermark = 0;
};

struct RecoveryReport {
  std::uint64_t heartbeats = 0;
  std::uint64_t misses = 0;      ///< heartbeats with a frozen probe
  std::uint64_t snapshots = 0;   ///< restore points taken
  std::uint64_t recoveries = 0;  ///< successful restore/migrate actions
  std::vector<RecoveryAction> actions;
  std::vector<InvalidWindow> invalid_windows;
  std::vector<MergeRecord> merges;
  bool completed = false;  ///< run() reached its deadline
};

/// Multi-line human-readable rendering for logs and the CLI.
std::string format_recovery(const RecoveryReport& report);

class Supervisor {
 public:
  /// The builder is invoked with a placement variant (0 = primary; the
  /// config's spare_variant when migrating) and must deterministically
  /// construct, load, and start the full testbed.
  using BuildFn = std::function<Testbed(std::size_t placement_variant)>;

  Supervisor(SupervisorConfig cfg, BuildFn build);

  /// Run the supervised lifecycle for `duration` of simulated time:
  /// heartbeat loop, snapshotting, detection, recovery. Returns the
  /// report (also available via report()). Throws std::runtime_error if a
  /// recovery is required and no snapshot attests (the time-0 snapshot
  /// always should, for a deterministic builder).
  const RecoveryReport& run(sim::TimeNs duration);

  const SupervisorConfig& config() const { return cfg_; }
  /// The live testbed (the rebuilt one after a recovery).
  Testbed& testbed() { return testbed_; }
  const RecoveryReport& report() const { return report_; }

  struct SnapshotRecord {
    sim::TimeNs taken_at = 0;
    std::vector<std::uint8_t> bytes;  ///< sealed snapshot file image
  };
  /// Restore points held, oldest first. After a recovery, records newer
  /// than the restore point are dropped — their timeline no longer exists.
  const std::vector<SnapshotRecord>& snapshots() const { return snapshots_; }

 private:
  sim::TimeNs now() const { return testbed_.cluster->shards().now(); }
  std::uint64_t probe();
  /// Serialize supervisor meta + full testbed state. `include_engine`
  /// adds the engine section — stored in snapshot files, but skipped for
  /// attestation because per-shard executed counts are placement-
  /// dependent and migration legitimately changes placement.
  void serialize(Testbed& tb, sim::SnapshotWriter& w, sim::TimeNs taken_at,
                 bool include_engine) const;
  void store_snapshot();
  /// Rebuild + replay + attest against `snap`. On success the live
  /// testbed is replaced and true returned; on any SnapshotError the
  /// rebuilt testbed is discarded and `why` names the diverging section.
  bool try_restore(const SnapshotRecord& snap, std::size_t variant, std::string& why);
  void recover(sim::TimeNs detected_at);
  void record_merges();
  void finish_merges();

  SupervisorConfig cfg_;
  BuildFn build_;
  Testbed testbed_;
  std::vector<SnapshotRecord> snapshots_;
  RecoveryReport report_;
  sim::TimeNs deadline_ = 0;
  std::size_t current_variant_ = 0;
  bool plan_applied_ = false;
  bool degraded_ = false;
};

}  // namespace ht
