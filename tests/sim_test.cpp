// Unit tests for the simulation substrate: event queue, stats, ports.
#include <gtest/gtest.h>

#include <array>

#include "net/packet_builder.hpp"
#include "sim/event_queue.hpp"
#include "sim/port.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace ht::sim {
namespace {

TEST(EventQueue, OrdersByTimeThenFifo) {
  EventQueue ev;
  std::vector<int> order;
  ev.schedule_at(100, [&] { order.push_back(2); });
  ev.schedule_at(50, [&] { order.push_back(1); });
  ev.schedule_at(100, [&] { order.push_back(3); });  // same time: FIFO
  ev.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(ev.now(), 100u);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue ev;
  int fired = 0;
  ev.schedule_at(10, [&] { ++fired; });
  ev.schedule_at(20, [&] { ++fired; });
  ev.schedule_at(30, [&] { ++fired; });
  EXPECT_EQ(ev.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(ev.now(), 20u);
  ev.run_until(100);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(ev.now(), 100u);
}

TEST(EventQueue, PastEventsClampToNow) {
  EventQueue ev;
  ev.schedule_at(100, [] {});
  ev.run_all();
  bool ran = false;
  ev.schedule_at(5, [&] { ran = true; });  // in the past
  ev.run_all();
  EXPECT_TRUE(ran);
  EXPECT_EQ(ev.now(), 100u);
}

TEST(EventQueue, SelfReschedulingRunsUntilDeadline) {
  EventQueue ev;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    ev.schedule_in(10, tick);
  };
  ev.schedule_at(0, tick);
  ev.run_until(95);
  EXPECT_EQ(ticks, 10);  // t = 0,10,...,90
}

// Pins the clock-advance contract documented on run_until: a deadline at or
// ahead of the entry clock always leaves now() == deadline (even when the
// queue drains early or was empty), and a deadline in the past runs nothing
// and never moves the clock backward.
TEST(EventQueue, RunUntilClockAdvanceContract) {
  EventQueue ev;
  // Empty queue: the clock still advances all the way to the deadline.
  EXPECT_EQ(ev.run_until(50), 0u);
  EXPECT_EQ(ev.now(), 50u);
  // Deadline in the past: nothing runs, the clock never moves backward.
  EXPECT_EQ(ev.run_until(10), 0u);
  EXPECT_EQ(ev.now(), 50u);
  // Deadline == now: a no-op that keeps the clock in place.
  EXPECT_EQ(ev.run_until(50), 0u);
  EXPECT_EQ(ev.now(), 50u);
  // Queue drains before the deadline: clock ends at the deadline, not at
  // the last event.
  bool ran = false;
  ev.schedule_at(60, [&] { ran = true; });
  EXPECT_EQ(ev.run_until(100), 1u);
  EXPECT_TRUE(ran);
  EXPECT_EQ(ev.now(), 100u);
  // An event scheduled exactly at a later deadline is included.
  int fired = 0;
  ev.schedule_at(200, [&] { ++fired; });
  ev.run_until(200);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(ev.now(), 200u);
}

TEST(EventQueue, SameTimestampEnqueueDuringDrainRunsInOrder) {
  EventQueue ev;
  std::vector<int> order;
  ev.schedule_at(10, [&] {
    order.push_back(1);
    // Scheduled while the t=10 bucket is draining: lands at the tail of
    // the ready list and runs before the clock moves on.
    ev.schedule_at(10, [&] { order.push_back(3); });
  });
  ev.schedule_at(10, [&] { order.push_back(2); });
  ev.schedule_at(11, [&] { order.push_back(4); });
  ev.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, FarFutureEventsBeyondWheelHorizon) {
  // The timer wheel covers 2^40 ns; later timestamps park in the overflow
  // heap and must still execute in (time, sequence) order.
  constexpr TimeNs kHorizon = TimeNs{1} << 40;
  EventQueue ev;
  std::vector<int> order;
  ev.schedule_at(2 * kHorizon + 3, [&] { order.push_back(4); });
  ev.schedule_at(kHorizon + 5, [&] { order.push_back(2); });
  ev.schedule_at(100, [&] { order.push_back(1); });
  ev.schedule_at(kHorizon + 5, [&] { order.push_back(3); });  // same time: FIFO
  EXPECT_EQ(ev.pending(), 4u);
  ev.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(ev.now(), 2 * kHorizon + 3);
}

TEST(EventQueue, SlabReusesNodesAndCountsHighWater) {
  EventQueue ev;
  for (int i = 0; i < 100; ++i) {
    ev.schedule_in(1, [] {});
    ev.run_all();
  }
  const auto& s = ev.slab_stats();
  // One node carved fresh, then recycled through the freelist every round.
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 99u);
  EXPECT_EQ(s.high_water, 1u);
  EXPECT_EQ(s.live, 0u);
  EXPECT_EQ(s.heap_closures, 0u);
}

TEST(EventQueue, OversizedClosureFallsBackToHeap) {
  EventQueue ev;
  std::array<std::uint64_t, 16> big{};  // 128B capture: too big for the node
  big[15] = 7;
  std::uint64_t seen = 0;
  ev.schedule_at(5, [big, &seen] { seen = big[15]; });
  EXPECT_EQ(ev.slab_stats().heap_closures, 1u);
  ev.run_all();
  EXPECT_EQ(seen, 7u);
  // Unexecuted oversized closures must also be destroyed cleanly.
  ev.schedule_at(1000, [big, &seen] { seen = big[0]; });
  EXPECT_EQ(ev.slab_stats().heap_closures, 2u);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.push(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(ErrorMetrics, KnownValues) {
  // Samples around a target of 10: errors are computable by hand.
  const std::vector<double> samples = {9.0, 11.0, 10.0, 12.0};
  const ErrorMetrics m = compute_error_metrics(samples, 10.0);
  EXPECT_DOUBLE_EQ(m.mae, (1 + 1 + 0 + 2) / 4.0);
  // mean = 10.5 -> |dev| = 1.5, .5, .5, 1.5
  EXPECT_DOUBLE_EQ(m.mad, 1.0);
  EXPECT_NEAR(m.rmse, std::sqrt((1 + 1 + 0 + 4) / 4.0), 1e-12);
}

TEST(ErrorMetrics, EmptyInput) {
  const ErrorMetrics m = compute_error_metrics({}, 10.0);
  EXPECT_EQ(m.samples, 0u);
  EXPECT_EQ(m.mae, 0.0);
}

TEST(InterDeparture, Deltas) {
  const auto d = inter_departure_times({100, 110, 125, 135});
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0], 10.0);
  EXPECT_EQ(d[1], 15.0);
  EXPECT_EQ(d[2], 10.0);
  EXPECT_TRUE(inter_departure_times({42}).empty());
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  EXPECT_NEAR(percentile(xs, 50), 50.5, 1e-9);
  EXPECT_NEAR(percentile(xs, 0), 1.0, 1e-9);
  EXPECT_NEAR(percentile(xs, 100), 100.0, 1e-9);
}

TEST(Histogram, QuantilesOfUniform) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100000; ++i) h.push((i % 1000) / 10.0);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, GaussianMoments) {
  Rng rng(7);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.push(rng.gaussian(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Port, SerializationPacesLineRate) {
  EventQueue ev;
  Port tx(ev, 0, 100.0);  // 100G
  Port rx(ev, 1, 100.0);
  tx.connect(&rx);
  rx.connect(&tx);
  std::vector<TimeNs> arrivals;
  rx.on_receive = [&](net::PacketPtr) { arrivals.push_back(ev.now()); };
  // 64B frames: line size 88B -> 7.04ns serialization at 100G.
  for (int i = 0; i < 1000; ++i) tx.send(net::make_packet(64));
  ev.run_all();
  ASSERT_EQ(arrivals.size(), 1000u);
  const double total = static_cast<double>(arrivals.back() - arrivals.front());
  EXPECT_NEAR(total / 999.0, 7.04, 0.02);
  EXPECT_NEAR(tx.tx_line_rate_gbps(), 100.0, 1.0);
}

TEST(Port, MacTimestampsOnDelivery) {
  EventQueue ev;
  Port tx(ev, 0, 10.0);
  Port rx(ev, 7, 10.0);
  tx.connect(&rx, 500);  // 500ns propagation
  rx.connect(&tx, 500);
  net::PacketPtr got;
  rx.on_receive = [&](net::PacketPtr p) { got = std::move(p); };
  tx.send(net::make_packet(64));
  ev.run_all();
  ASSERT_TRUE(got);
  EXPECT_EQ(got->meta().ingress_port, 7);
  // 88B at 10G = 70.4ns serialization + 500ns propagation.
  EXPECT_NEAR(static_cast<double>(got->meta().ingress_tstamp_ns), 570.4, 1.0);
}

TEST(Port, DropsWithoutPeer) {
  EventQueue ev;
  Port p(ev, 0, 10.0);
  p.send(net::make_packet(64));
  EXPECT_EQ(p.dropped_no_peer(), 1u);
  EXPECT_EQ(p.tx_packets(), 0u);
}

TEST(Port, TransmitHookReportsStartTimes) {
  EventQueue ev;
  Port tx(ev, 0, 100.0);
  Port rx(ev, 1, 100.0);
  tx.connect(&rx);
  std::vector<TimeNs> starts;
  tx.on_transmit = [&](const net::Packet&, TimeNs t) { starts.push_back(t); };
  tx.send(net::make_packet(64));
  tx.send(net::make_packet(64));
  ev.run_all();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], 0u);
  EXPECT_EQ(starts[1], 7u);  // rounded 7.04
}

}  // namespace
}  // namespace ht::sim
