// PacketBuilder: construct well-formed packets from field values.
//
// This is the code path the switch CPU uses to materialize template packets
// (§5.1 "template packet generation": payload customization and header
// initialization happen on the CPU). It is also used by DUT models and the
// software-baseline generator.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/fields.hpp"
#include "net/packet.hpp"

namespace ht::net {

class PacketBuilder {
 public:
  /// Start a canonical Eth/IPv4/<l4> packet of `total_len` bytes (padded
  /// with zeros). `total_len` is clamped up to the minimum stack size.
  explicit PacketBuilder(HeaderKind l4, std::size_t total_len = 64);

  /// Set any wire field; value is masked to the field width.
  PacketBuilder& set(FieldId id, std::uint64_t value);
  /// Set the payload to a byte string starting right after the L4 header;
  /// extends the packet if needed.
  PacketBuilder& payload(std::string_view bytes);
  PacketBuilder& payload_fill(std::uint8_t byte);

  /// Finalize: sets eth.type/ipv4 invariants, lengths, and checksums.
  Packet build() const;

 private:
  HeaderKind l4_;
  Packet pkt_;
};

/// Shorthand constructors used by tests and applications.
Packet make_udp_packet(std::uint32_t sip, std::uint32_t dip, std::uint16_t sport,
                       std::uint16_t dport, std::size_t total_len = 64);
Packet make_tcp_packet(std::uint32_t sip, std::uint32_t dip, std::uint16_t sport,
                       std::uint16_t dport, std::uint64_t flags, std::uint32_t seq = 0,
                       std::uint32_t ack = 0, std::size_t total_len = 64);

/// Parse dotted-quad "a.b.c.d" into a host-order uint32. Throws on error.
std::uint32_t ipv4_address(std::string_view dotted);
/// Format a host-order uint32 as dotted-quad.
std::string ipv4_to_string(std::uint32_t addr);

}  // namespace ht::net
