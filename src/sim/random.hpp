// Deterministic randomness for the simulation.
//
// Every stochastic component (MAC jitter, baseline-tester timing noise,
// workload generators) draws from an Rng seeded explicitly, so experiments
// are reproducible and tests can assert exact statistics.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ht::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull) : engine_(seed) {}

  /// One step of the splitmix64 sequence starting at `state` (Steele et
  /// al., "Fast splittable pseudorandom number generators"). Advances
  /// `state` and returns a fully mixed 64-bit output. Used as the seed
  /// fanout below and available to callers that need a cheap stateless
  /// mix (hash of an id, derived stream keys).
  static std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b5ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Seed for stream `stream` of run seed `run_seed`: the (stream+1)-th
  /// splitmix64 output of the run seed. This is how per-shard (and
  /// per-tester) Rng streams are derived from one run seed. splitmix64's
  /// full-avalanche finalizer decorrelates the streams: unlike the naive
  /// `run_seed + stream` seeding, two derived seeds never feed the
  /// mt19937_64 initializer with near-identical values, so neighbouring
  /// shards do not start in correlated engine states.
  static std::uint64_t stream_seed(std::uint64_t run_seed, std::uint64_t stream) {
    std::uint64_t state = run_seed;
    std::uint64_t out = splitmix64(state);
    for (std::uint64_t i = 0; i < stream; ++i) out = splitmix64(state);
    return out;
  }

  /// An Rng on the derived stream: `Rng::for_stream(seed, shard_id)`.
  static Rng for_stream(std::uint64_t run_seed, std::uint64_t stream) {
    return Rng(stream_seed(run_seed, stream));
  }

  std::uint64_t next_u64() { return engine_(); }
  /// Uniform in [0, bound) — bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) {
    return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
  }
  /// Uniform in [lo, hi] inclusive.
  std::uint64_t uniform_range(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }
  /// Uniform in [0, 1): the top 53 bits of one engine draw, scaled. One
  /// engine step per call, no distribution-object overhead — this is the
  /// innermost call of every stochastic hot path (MAC jitter, chaos).
  double uniform01() { return static_cast<double>(engine_() >> 11) * 0x1.0p-53; }
  /// Marsaglia polar with the spare value cached across calls: the
  /// rejection loop and the log/sqrt pair are paid once per *two* draws.
  /// (std::normal_distribution computes the same pair but a fresh
  /// distribution object per call would discard the spare.)
  double gaussian(double mean, double stddev) {
    if (has_spare_) {
      has_spare_ = false;
      return mean + stddev * spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform01() - 1.0;
      v = 2.0 * uniform01() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * f;
    has_spare_ = true;
    return mean + stddev * u * f;
  }
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  std::mt19937_64& engine() { return engine_; }

  /// Full generator state (mt19937_64 state words + position + the cached
  /// Marsaglia spare) as a portable text record, for run-state snapshots
  /// (sim/snapshot.hpp). Round-trips exactly: after set_state_string the
  /// next draws are identical to the captured generator's.
  std::string state_string() const {
    std::ostringstream os;
    // The spare travels as its bit pattern: decimal formatting of a double
    // would not round-trip it exactly.
    os << engine_ << ' ' << has_spare_ << ' ' << std::bit_cast<std::uint64_t>(spare_);
    return os.str();
  }
  void set_state_string(const std::string& s) {
    std::istringstream is(s);
    std::uint64_t spare_bits = 0;
    is >> engine_ >> has_spare_ >> spare_bits;
    if (!is) throw std::invalid_argument("sim::Rng: malformed state string");
    spare_ = std::bit_cast<double>(spare_bits);
  }

 private:
  std::mt19937_64 engine_;
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace ht::sim
