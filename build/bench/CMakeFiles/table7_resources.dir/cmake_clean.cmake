file(REMOVE_RECURSE
  "CMakeFiles/table7_resources.dir/table7_resources.cpp.o"
  "CMakeFiles/table7_resources.dir/table7_resources.cpp.o.d"
  "table7_resources"
  "table7_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
