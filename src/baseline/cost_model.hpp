// Equipment & power cost model (Table 6, §7.4).
//
// Constants come straight from the paper's sources: a programmable switch
// costs ~$3600 and 150W per Tbps [TurboFlow/EuroSys'18]; an 8-core CPU
// server costs ~$3500 and 750W under full load and sustains 80Gbps of
// MoonGen traffic (Fig 10b).
#pragma once

#include <cstdint>

namespace ht::baseline {

struct CostModel {
  // HyperTester platform.
  double switch_cost_per_tbps_usd = 3'600.0;
  double switch_power_per_tbps_w = 150.0;

  // MoonGen platform. Table 6 reports $42000 and 7200W per Tbps at
  // 80Gbps per server, which back-solves to $3360 and 576W per machine
  // (the paper's §7.4 text quotes "$3500 and 750W" loosely; we pin the
  // constants to reproduce the table's numbers).
  double server_cost_usd = 3'360.0;
  double server_power_w = 576.0;
  double server_throughput_gbps = 80.0;

  /// $/Tbps for MoonGen on commodity servers.
  double moongen_cost_per_tbps_usd() const {
    return server_cost_usd * (1000.0 / server_throughput_gbps);
  }
  double moongen_power_per_tbps_w() const {
    return server_power_w * (1000.0 / server_throughput_gbps);
  }

  double saving_usd_per_tbps() const {
    return moongen_cost_per_tbps_usd() - switch_cost_per_tbps_usd;
  }
  double saving_w_per_tbps() const {
    return moongen_power_per_tbps_w() - switch_power_per_tbps_w;
  }

  /// Servers replaced by one switch of `switch_tbps` (Table 6 narrative:
  /// a 6.5Tbps switch replaces 81 8-core servers).
  std::uint64_t servers_replaced(double switch_tbps) const {
    return static_cast<std::uint64_t>(switch_tbps * 1000.0 / server_throughput_gbps);
  }
};

}  // namespace ht::baseline
