# Empty dependencies file for fig13_random_generation.
# This may be replaced when dependencies are built.
