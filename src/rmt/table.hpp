// Match-action tables.
//
// A table declares a key (list of fields, each with a match kind), holds
// entries installed by the control plane, and maps a PHV to an action.
// Exact-only tables use a hash index (as SRAM exact tables do); tables
// with ternary/range keys fall back to priority-ordered scan (TCAM).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/fields.hpp"
#include "rmt/phv.hpp"
#include "rmt/registers.hpp"
#include "rmt/resources.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace ht::rmt {

/// Everything an action body may touch. Digest emission is a callback so
/// the table layer stays decoupled from the digest engine.
struct ActionContext {
  Phv& phv;
  RegisterFile& registers;
  sim::Rng& rng;
  sim::TimeNs now;
  std::function<void(std::uint32_t type, std::vector<std::uint64_t> values)> emit_digest;
};

using ActionFn = std::function<void(ActionContext&)>;

enum class MatchKind : std::uint8_t { kExact, kTernary, kRange, kLpm };

struct MatchSpec {
  net::FieldId field;
  MatchKind kind = MatchKind::kExact;
};

/// One field's criterion inside an entry.
struct KeyMatch {
  std::uint64_t value = 0;
  std::uint64_t mask = ~std::uint64_t{0};  ///< ternary only
  std::uint64_t high = 0;                  ///< range upper bound (inclusive)
  unsigned prefix_len = 0;                 ///< LPM only (bits from the MSB)
};

/// Build an LPM criterion for a field of `field_bits` total width.
KeyMatch lpm_match(std::uint64_t value, unsigned prefix_len, unsigned field_bits);

struct TableEntry {
  std::vector<KeyMatch> keys;
  int priority = 0;  ///< higher wins among ternary/range overlaps
  std::string action_name;
  ActionFn action;
};

/// Install-time metadata describing what a table *is*, so the task-compiled
/// fast path (src/rmt/fastpath/) can re-derive its semantics without
/// interpreting the gate/action closures. Components that install tables
/// (HTPS sender, HTPR receiver) stamp their role; a table without hints is
/// opaque and forces the owning task onto the interpreted path.
struct TableHints {
  enum class Role : std::uint8_t {
    kNone,             ///< unknown/custom — unfusable
    kHtpsSender,       ///< accelerator+replicator (ingress, keyed by template id)
    kHtpsEditor,       ///< editor (egress, keyed by template id, front ports)
    kHtprReceived,     ///< received-traffic query (ingress, front ports)
    kHtprSent,         ///< sent-traffic query (egress, one template id)
    kHtprMaintenance,  ///< cuckoo-move pass (ingress, recirculating packets)
  };
  Role role = Role::kNone;
  /// kHtprReceived / kHtprSent: the owning query index.
  std::size_t query_index = 0;
  /// kHtprSent: the monitored template id.
  std::uint32_t template_id = 0;
};

class MatchActionTable {
 public:
  MatchActionTable(std::string name, std::vector<MatchSpec> key, std::size_t size_hint = 1024);

  const std::string& name() const { return name_; }
  const std::vector<MatchSpec>& key() const { return key_; }
  std::size_t size_hint() const { return size_hint_; }
  std::size_t entry_count() const { return entries_.size(); }

  /// Install an entry; `keys` must parallel the declared key. Throws on
  /// arity mismatch or when an exact table exceeds its declared size.
  void add_entry(TableEntry entry);
  void set_default(std::string action_name, ActionFn action);
  void clear_entries();

  /// Match + execute: runs the hit entry's action or the default action.
  /// Returns true on hit.
  bool apply(ActionContext& ctx);

  /// Match only (no action); exposed for tests and the receiver fast path.
  const TableEntry* lookup(const Phv& phv) const;

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  /// Fast-path mirror of apply()'s hit/miss accounting: the fused per-task
  /// apply resolved the match at install time, but the counters are
  /// observable (mirrored into the metrics registry), so every fused pass
  /// must book the outcome it precomputed.
  void count_apply(bool hit) const { hit ? ++hits_ : ++misses_; }

  void set_hints(TableHints hints) { hints_ = hints; }
  const TableHints& hints() const { return hints_; }

  /// Structural resource estimate for Table 7-style accounting.
  ResourceUsage estimate_resources() const;

 private:
  bool entry_matches(const TableEntry& e, const Phv& phv) const;
  std::string pack_exact_key(const Phv& phv) const;
  std::string pack_entry_key(const TableEntry& e) const;

  std::string name_;
  std::vector<MatchSpec> key_;
  std::size_t size_hint_;
  bool all_exact_;
  std::vector<TableEntry> entries_;
  std::unordered_map<std::string, std::size_t> exact_index_;
  std::optional<TableEntry> default_entry_;
  TableHints hints_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace ht::rmt
