// Tests for the receiver side: counter store (exact + cuckoo + FIFO),
// false-positive analysis, and the query engine.
#include <gtest/gtest.h>

#include "htpr/false_positive.hpp"
#include "htpr/receiver.hpp"
#include "htps/sender.hpp"
#include "net/headers.hpp"
#include "net/packet_builder.hpp"
#include "switchcpu/controller.hpp"
#include "testutil.hpp"

namespace ht::htpr {
namespace {

using net::FieldId;

CounterStoreConfig small_store(std::size_t buckets = 64, unsigned digest_bits = 16) {
  CounterStoreConfig cfg;
  cfg.name = "s";
  cfg.hash.key_fields = {FieldId::kIpv4Sip, FieldId::kIpv4Dip};
  cfg.hash.digest_bits = digest_bits;
  cfg.hash.buckets = buckets;
  cfg.fifo_capacity = 64;
  return cfg;
}

struct StoreFixture {
  StoreFixture(CounterStoreConfig cfg = small_store())
      : asic(ev, rmt::AsicConfig{.num_ports = 2}), store(asic, std::move(cfg)) {}

  rmt::ActionContext ctx_for(std::uint32_t sip, std::uint32_t dip) {
    phv = rmt::Phv{};
    phv.packet = net::make_packet(net::make_udp_packet(sip, dip, 1, 2, 64));
    phv.set(FieldId::kIpv4Sip, sip);
    phv.set(FieldId::kIpv4Dip, dip);
    return rmt::ActionContext{phv, asic.registers(), asic.rng(), ev.now(),
                              [this](std::uint32_t type, std::vector<std::uint64_t> v) {
                                digests.emplace_back(type, std::move(v));
                              }};
  }

  sim::EventQueue ev;
  rmt::SwitchAsic asic;
  CounterStore store;
  rmt::Phv phv;
  std::vector<std::pair<std::uint32_t, std::vector<std::uint64_t>>> digests;
  std::map<std::uint64_t, std::uint64_t> no_evictions;
};

TEST(CounterHashParams, FingerprintNeverZeroAndWidthBounded) {
  CounterHashParams h;
  h.key_fields = {FieldId::kIpv4Sip};
  h.digest_bits = 16;
  h.buckets = 256;
  for (std::uint64_t k = 0; k < 5000; ++k) {
    std::vector<std::uint64_t> key = {k};
    const auto fp = h.fingerprint(key);
    EXPECT_NE(fp, 0u);
    EXPECT_LT(fp, 1u << 16);
  }
}

TEST(CounterHashParams, AltBucketIsInvolution) {
  CounterHashParams h;
  h.key_fields = {FieldId::kIpv4Sip};
  h.buckets = 1024;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    std::vector<std::uint64_t> key = {k};
    const auto fp = h.fingerprint(key);
    const auto b1 = h.bucket1(key);
    const auto b2 = h.alt_bucket(b1, fp);
    EXPECT_EQ(h.alt_bucket(b2, fp), b1);  // cuckoo moves can always go back
    EXPECT_LT(b2, h.buckets);
  }
}

TEST(CounterStore, SumsPerKey) {
  StoreFixture f;
  for (int i = 0; i < 5; ++i) {
    auto ctx = f.ctx_for(1, 2);
    f.store.update(ctx, 10);
  }
  auto ctx = f.ctx_for(3, 4);
  f.store.update(ctx, 7);
  EXPECT_EQ(f.store.total_for_key(std::vector<std::uint64_t>{1, 2}, f.no_evictions), 50u);
  EXPECT_EQ(f.store.total_for_key(std::vector<std::uint64_t>{3, 4}, f.no_evictions), 7u);
  EXPECT_EQ(f.store.total_for_key(std::vector<std::uint64_t>{9, 9}, f.no_evictions), 0u);
}

TEST(CounterStore, UpdateReturnsRunningValue) {
  StoreFixture f;
  auto c1 = f.ctx_for(1, 2);
  EXPECT_EQ(f.store.update(c1, 4), 4u);
  auto c2 = f.ctx_for(1, 2);
  EXPECT_EQ(f.store.update(c2, 4), 8u);
}

TEST(CounterStore, ExactEntriesShadowCuckoo) {
  StoreFixture f;
  f.store.install_exact_entries({{1, 2}});
  auto ctx = f.ctx_for(1, 2);
  f.store.update(ctx, 5);
  EXPECT_EQ(f.store.exact_hits(), 1u);
  EXPECT_EQ(f.store.occupied_buckets(), 0u);  // never touched the arrays
  EXPECT_EQ(f.store.total_for_key(std::vector<std::uint64_t>{1, 2}, f.no_evictions), 5u);
}

TEST(CounterStore, MaxMinFuncs) {
  auto cfg = small_store();
  cfg.func = UpdateFunc::kMax;
  StoreFixture f(cfg);
  for (const std::uint64_t v : {5u, 17u, 3u}) {
    auto ctx = f.ctx_for(1, 2);
    f.store.update(ctx, v);
  }
  EXPECT_EQ(f.store.total_for_key(std::vector<std::uint64_t>{1, 2}, f.no_evictions), 17u);
}

TEST(CounterStore, FifoStagingAndMaintenanceMoves) {
  // Tiny store: 4 buckets force displacements quickly.
  auto cfg = small_store(4);
  StoreFixture f(cfg);
  // Insert enough distinct keys that some collide into full buckets.
  for (std::uint32_t k = 0; k < 16; ++k) {
    auto ctx = f.ctx_for(k, k + 100);
    f.store.update(ctx, 1);
  }
  EXPECT_GT(f.store.fifo_pushes(), 0u);
  // Drive maintenance passes until the FIFO drains or evicts to CPU.
  for (int pass = 0; pass < 5000 && !f.store.fifo().empty(); ++pass) {
    auto ctx = f.ctx_for(0, 0);
    f.store.maintenance_pass(ctx);
  }
  EXPECT_TRUE(f.store.fifo().empty());
  // Every key's count is findable somewhere (arrays or CPU evictions).
  std::map<std::uint64_t, std::uint64_t> cpu;
  for (const auto& [type, values] : f.digests) cpu[values[0]] += values[1];
  std::uint64_t total = 0;
  for (std::uint32_t k = 0; k < 16; ++k) {
    total += f.store.total_for_key(std::vector<std::uint64_t>{k, k + 100}, cpu);
  }
  EXPECT_EQ(total, 16u);
}

TEST(CounterStore, EvictsToCpuAfterMaxBounces) {
  auto cfg = small_store(4);
  cfg.max_bounces = 1;
  StoreFixture f(cfg);
  for (std::uint32_t k = 0; k < 32; ++k) {
    auto ctx = f.ctx_for(k, 1);
    f.store.update(ctx, 1);
  }
  for (int pass = 0; pass < 500 && !f.store.fifo().empty(); ++pass) {
    auto ctx = f.ctx_for(0, 0);
    f.store.maintenance_pass(ctx);
  }
  EXPECT_GT(f.store.cpu_evictions(), 0u);
  for (const auto& [type, values] : f.digests) {
    EXPECT_EQ(type, cfg.eviction_digest_type);
    EXPECT_EQ(values.size(), 2u);
  }
}

TEST(CounterStore, DistinctCountsUniqueKeys) {
  auto cfg = small_store(256);
  cfg.func = UpdateFunc::kDistinct;
  StoreFixture f(cfg);
  for (std::uint32_t k = 0; k < 20; ++k) {
    for (int rep = 0; rep < 3; ++rep) {
      auto ctx = f.ctx_for(k, 1);
      f.store.update(ctx, 1);
    }
  }
  EXPECT_EQ(f.store.distinct_count(f.no_evictions), 20u);
}

TEST(CounterStore, RejectsBadConfig) {
  sim::EventQueue ev;
  rmt::SwitchAsic asic(ev, rmt::AsicConfig{.num_ports = 2});
  auto bad_buckets = small_store(60);  // not a power of two
  EXPECT_THROW(CounterStore(asic, bad_buckets), std::invalid_argument);
  auto bad_digest = small_store(64, 20);
  bad_digest.name = "s2";
  EXPECT_THROW(CounterStore(asic, bad_digest), std::invalid_argument);
  auto no_key = small_store();
  no_key.name = "s3";
  no_key.hash.key_fields.clear();
  EXPECT_THROW(CounterStore(asic, no_key), std::invalid_argument);
}

// --- false-positive analysis -------------------------------------------------

std::vector<std::vector<std::uint64_t>> synthetic_keys(std::size_t n) {
  std::vector<std::vector<std::uint64_t>> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back({0x0A000000 + i, 0x0B000000 + (i * 7)});
  }
  return keys;
}

TEST(FalsePositive, NoCollisionsInTinySpace) {
  CounterHashParams h;
  h.key_fields = {FieldId::kIpv4Sip, FieldId::kIpv4Dip};
  h.digest_bits = 32;
  h.buckets = 1 << 16;
  const auto analysis = analyze_collisions(h, synthetic_keys(100));
  EXPECT_EQ(analysis.exact_keys.size(), 0u);
  EXPECT_EQ(analysis.keys_analyzed, 100u);
}

TEST(FalsePositive, DetectsCollisionsInLargeSpace16Bit) {
  CounterHashParams h;
  h.key_fields = {FieldId::kIpv4Sip, FieldId::kIpv4Dip};
  h.digest_bits = 16;
  h.buckets = 1 << 12;
  const auto analysis = analyze_collisions(h, synthetic_keys(100'000));
  // 100K keys, 16-bit fingerprints: collisions certain but sparse.
  EXPECT_GT(analysis.exact_keys.size(), 0u);
  EXPECT_LT(analysis.exact_keys.size(), 5'000u);
  EXPECT_GT(analysis.exact_table_bytes, 0u);
}

TEST(FalsePositive, WiderDigestNeedsFewerEntries) {
  CounterHashParams h16, h32;
  h16.key_fields = h32.key_fields = {FieldId::kIpv4Sip, FieldId::kIpv4Dip};
  h16.digest_bits = 16;
  h32.digest_bits = 32;
  h16.buckets = h32.buckets = 1 << 14;
  const auto keys = synthetic_keys(200'000);
  const auto a16 = analyze_collisions(h16, keys);
  const auto a32 = analyze_collisions(h32, keys);
  EXPECT_GT(a16.exact_keys.size(), a32.exact_keys.size());  // Fig 17b claim
}

TEST(FalsePositive, ExactEntriesGuaranteeAccuracy) {
  // The paper's headline property: with the precomputed exact entries
  // installed, per-key counts are exact even when fingerprints collide.
  auto cfg = small_store(1 << 10, 16);
  cfg.exact_capacity = 1 << 16;
  cfg.fifo_capacity = 1 << 12;
  StoreFixture f(cfg);
  const auto keys = synthetic_keys(20'000);
  const auto analysis = analyze_collisions(cfg.hash, keys);
  f.store.install_exact_entries(analysis.exact_keys);

  // Each key is counted key_index % 3 + 1 times.
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t rep = 0; rep < i % 3 + 1; ++rep) {
      auto ctx = f.ctx_for(static_cast<std::uint32_t>(keys[i][0]),
                           static_cast<std::uint32_t>(keys[i][1]));
      f.store.update(ctx, 1);
      // Interleave maintenance so the FIFO keeps draining.
      auto mctx = f.ctx_for(0, 0);
      f.store.maintenance_pass(mctx);
    }
  }
  while (!f.store.fifo().empty()) {
    auto ctx = f.ctx_for(0, 0);
    f.store.maintenance_pass(ctx);
  }
  std::map<std::uint64_t, std::uint64_t> cpu;
  for (const auto& [type, values] : f.digests) cpu[values[0]] += values[1];

  std::size_t wrong = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto got = f.store.total_for_key(keys[i], cpu);
    if (got != i % 3 + 1) ++wrong;
  }
  EXPECT_EQ(wrong, 0u) << "false positives corrupted " << wrong << " counters";
}

TEST(FalsePositive, WithoutExactEntriesCollisionsCorrupt) {
  // Ablation: the same workload WITHOUT exact-key matching produces wrong
  // counters — the reason Sonata-style stores are not false-positive-free.
  auto cfg = small_store(1 << 10, 16);
  cfg.fifo_capacity = 1 << 12;
  StoreFixture f(cfg);
  const auto keys = synthetic_keys(20'000);
  const auto analysis = analyze_collisions(cfg.hash, keys);
  ASSERT_GT(analysis.exact_keys.size(), 0u);  // collisions exist in this space

  for (const auto& key : keys) {
    auto ctx = f.ctx_for(static_cast<std::uint32_t>(key[0]), static_cast<std::uint32_t>(key[1]));
    f.store.update(ctx, 1);
    auto mctx = f.ctx_for(0, 0);
    f.store.maintenance_pass(mctx);
  }
  while (!f.store.fifo().empty()) {
    auto ctx = f.ctx_for(0, 0);
    f.store.maintenance_pass(ctx);
  }
  std::map<std::uint64_t, std::uint64_t> cpu;
  for (const auto& [type, values] : f.digests) cpu[values[0]] += values[1];
  std::size_t wrong = 0;
  for (const auto& key : keys) {
    if (f.store.total_for_key(key, cpu) != 1) ++wrong;
  }
  EXPECT_GT(wrong, 0u);
}

// --- query engine ------------------------------------------------------------

TEST(Receiver, KeylessReduceSumsBytes) {
  test::AsicTestbed tb(rmt::AsicConfig{.num_ports = 2});
  Receiver rx(tb.asic);
  QueryConfig q;
  q.name = "thru";
  q.ops = {MapOp{.keys = {}, .value_field = FieldId::kPktLen}, ReduceOp{UpdateFunc::kSum}};
  const auto qid = rx.add_query(std::move(q));
  rx.install();
  for (int i = 0; i < 10; ++i) {
    tb.sinks[0]->port.send(net::make_packet(net::make_udp_packet(1, 2, 3, 4, 100)));
  }
  tb.ev.run_until(sim::us(100));
  EXPECT_EQ(rx.keyless_total(qid), 1000u);
  EXPECT_EQ(rx.matched(qid), 10u);
}

TEST(Receiver, FilterSelectsTcpSyn) {
  test::AsicTestbed tb(rmt::AsicConfig{.num_ports = 2});
  Receiver rx(tb.asic);
  QueryConfig q;
  q.name = "syns";
  q.ops = {FilterOp{FieldId::kTcpFlags, Cmp::kEq, net::tcpflag::kSyn},
           MapOp{}, ReduceOp{UpdateFunc::kSum}};
  const auto qid = rx.add_query(std::move(q));
  rx.install();
  tb.sinks[0]->port.send(
      net::make_packet(net::make_tcp_packet(1, 2, 3, 4, net::tcpflag::kSyn)));
  tb.sinks[0]->port.send(
      net::make_packet(net::make_tcp_packet(1, 2, 3, 4, net::tcpflag::kAck)));
  tb.sinks[0]->port.send(net::make_packet(net::make_udp_packet(1, 2, 3, 4)));
  tb.ev.run_until(sim::us(100));
  EXPECT_EQ(rx.evaluated(qid), 3u);
  EXPECT_EQ(rx.matched(qid), 1u);
}

TEST(Receiver, PortScopedQuery) {
  test::AsicTestbed tb(rmt::AsicConfig{.num_ports = 4});
  Receiver rx(tb.asic);
  QueryConfig q;
  q.name = "p2only";
  q.ports = {2};
  q.ops = {MapOp{}, ReduceOp{UpdateFunc::kSum}};
  const auto qid = rx.add_query(std::move(q));
  rx.install();
  tb.sinks[1]->port.send(net::make_packet(net::make_udp_packet(1, 2, 3, 4)));
  tb.sinks[2]->port.send(net::make_packet(net::make_udp_packet(1, 2, 3, 4)));
  tb.ev.run_until(sim::us(100));
  EXPECT_EQ(rx.matched(qid), 1u);
}

TEST(Receiver, KeyedReduceCountsPerFlow) {
  test::AsicTestbed tb(rmt::AsicConfig{.num_ports = 2});
  Receiver rx(tb.asic);
  QueryConfig q;
  q.name = "perflow";
  q.ops = {MapOp{.keys = {FieldId::kIpv4Dip}, .value_field = FieldId::kPktLen},
           ReduceOp{UpdateFunc::kSum}};
  q.store.hash.buckets = 256;
  const auto qid = rx.add_query(std::move(q));
  rx.install();
  for (int i = 0; i < 4; ++i) {
    tb.sinks[0]->port.send(net::make_packet(net::make_udp_packet(1, 0xAA, 3, 4, 64)));
  }
  tb.sinks[0]->port.send(net::make_packet(net::make_udp_packet(1, 0xBB, 3, 4, 128)));
  tb.ev.run_until(sim::us(100));
  auto* store = rx.store(qid);
  ASSERT_NE(store, nullptr);
  std::map<std::uint64_t, std::uint64_t> cpu;
  EXPECT_EQ(store->total_for_key(std::vector<std::uint64_t>{0xAA}, cpu), 256u);
  EXPECT_EQ(store->total_for_key(std::vector<std::uint64_t>{0xBB}, cpu), 128u);
}

TEST(Receiver, DistinctQueryOverFlows) {
  test::AsicTestbed tb(rmt::AsicConfig{.num_ports = 2});
  Receiver rx(tb.asic);
  QueryConfig q;
  q.name = "uniq";
  q.ops = {MapOp{.keys = {FieldId::kIpv4Sip}}, DistinctOp{}};
  q.store.hash.buckets = 256;
  const auto qid = rx.add_query(std::move(q));
  rx.install();
  for (const std::uint32_t sip : {10u, 20u, 10u, 30u, 20u, 10u}) {
    tb.sinks[0]->port.send(net::make_packet(net::make_udp_packet(sip, 2, 3, 4)));
  }
  tb.ev.run_until(sim::us(100));
  std::map<std::uint64_t, std::uint64_t> cpu;
  EXPECT_EQ(rx.store(qid)->distinct_count(cpu), 3u);
}

TEST(Receiver, SentTrafficQueryObservesEditedPackets) {
  test::AsicTestbed tb(rmt::AsicConfig{.num_ports = 2});
  htps::Sender sender(tb.asic);
  auto cfg = htps::TemplateConfig{};
  cfg.spec.l4 = net::HeaderKind::kUdp;
  cfg.spec.pkt_len = 100;
  cfg.spec.header_init = {{FieldId::kIpv4Sip, 1}, {FieldId::kIpv4Dip, 2}};
  cfg.egress_ports = {1};
  cfg.interval_ns = 10'000;
  const auto tid = sender.add_template(std::move(cfg));
  sender.install();

  Receiver rx(tb.asic);
  QueryConfig q;
  q.name = "sent";
  q.source = QueryConfig::Source::kSent;
  q.template_id = tid;
  q.ops = {MapOp{.keys = {}, .value_field = FieldId::kPktLen}, ReduceOp{UpdateFunc::kSum}};
  const auto qid = rx.add_query(std::move(q));
  rx.install();

  sender.start();
  tb.ev.run_until(sim::ms(1));
  const auto sent = tb.sinks[1]->packets.size();
  ASSERT_GT(sent, 10u);
  EXPECT_EQ(rx.keyless_total(qid), sent * 100u);
}

TEST(Receiver, ResultFilterSplitsOnCount) {
  // Web-testing style: reduce per flow, then filter on the running count.
  test::AsicTestbed tb(rmt::AsicConfig{.num_ports = 2});
  Receiver rx(tb.asic);
  QueryConfig q;
  q.name = "over3";
  q.ops = {MapOp{.keys = {FieldId::kIpv4Sip}}, ReduceOp{UpdateFunc::kCount},
           FilterOp{.cmp = Cmp::kGe, .value = 3, .on_result = true}};
  q.store.hash.buckets = 64;
  const auto qid = rx.add_query(std::move(q));
  rx.install();
  for (int i = 0; i < 5; ++i) {
    tb.sinks[0]->port.send(net::make_packet(net::make_udp_packet(7, 2, 3, 4)));
  }
  tb.ev.run_until(sim::us(100));
  // Counts 1..5; passes on 3, 4, 5.
  EXPECT_EQ(rx.matched(qid), 3u);
}

TEST(Compare, AllOperators) {
  EXPECT_TRUE(compare(Cmp::kEq, 5, 5));
  EXPECT_TRUE(compare(Cmp::kNe, 5, 6));
  EXPECT_TRUE(compare(Cmp::kLt, 5, 6));
  EXPECT_TRUE(compare(Cmp::kLe, 5, 5));
  EXPECT_TRUE(compare(Cmp::kGt, 7, 6));
  EXPECT_TRUE(compare(Cmp::kGe, 7, 7));
  EXPECT_FALSE(compare(Cmp::kLt, 6, 6));
}

}  // namespace
}  // namespace ht::htpr
