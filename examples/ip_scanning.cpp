// Internet-style IP scanning (the ZMap use case from §1/§2.3).
//
// Sweeps a /19 with TCP SYN probes at 1Mpps, counts hosts answering
// SYN+ACK with an exact (false-positive-free) distinct query, and checks
// the result against the target population's ground truth.
//
//   $ ./ip_scanning
#include <cstdio>

#include "apps/tasks.hpp"
#include "core/hypertester.hpp"
#include "dut/scan_targets.hpp"
#include "net/headers.hpp"
#include "net/packet_builder.hpp"

int main() {
  using namespace ht;

  HyperTester tester;
  // Target population: 10.0.0.0/16 with ~23% of hosts alive, port 80 open.
  dut::ScanTargets targets(tester.events(), {.subnet = net::ipv4_address("10.0.0.0"),
                                             .subnet_mask = 0xFFFF0000,
                                             .alive_fraction = 0.23,
                                             .open_port = 80});
  targets.attach(tester.asic().port(1));

  const std::uint32_t base = net::ipv4_address("10.0.32.0");
  const std::uint32_t count = 8192;
  auto app = apps::ip_scan(base, count, 80, {1}, /*interval_ns=*/1'000, /*loops=*/1);
  tester.load(app.task);

  std::printf("scanning %u addresses from %s at 1Mpps...\n", count,
              net::ipv4_to_string(base).c_str());
  std::printf("compiled with %zu exact-match entries for false-positive freedom\n",
              tester.compiled().queries[app.q_alive.index].exact_keys.size());

  tester.start();
  tester.run_for(sim::ms(20));

  const auto found = tester.query_distinct(app.q_alive);
  const auto truth = targets.alive_in_range(base, base + count - 1);
  std::printf("\nscan %s after %llu probes\n",
              tester.trigger_done(app.probe) ? "complete" : "STILL RUNNING",
              static_cast<unsigned long long>(tester.trigger_fires(app.probe)));
  std::printf("alive hosts found:  %llu\n", static_cast<unsigned long long>(found));
  std::printf("ground truth:       %llu\n", static_cast<unsigned long long>(truth));
  std::printf("accuracy:           %s\n", found == truth ? "EXACT (0 false positives)"
                                                         : "MISMATCH");
  std::printf("targets saw %llu probes, sent %llu SYN+ACKs and %llu RSTs\n",
              static_cast<unsigned long long>(targets.probes_received()),
              static_cast<unsigned long long>(targets.synacks_sent()),
              static_cast<unsigned long long>(targets.rsts_sent()));
  return found == truth ? 0 : 1;
}
