#include "htpr/counter_store.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace ht::htpr {

namespace {
bool is_power_of_two(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

std::uint64_t CounterHashParams::fingerprint(std::span<const std::uint64_t> key) const {
  const rmt::HashUnit h(fp_seed);
  const std::uint64_t fp =
      h.hash_fields(key, key_fields, digest_bits >= 32 ? 32u : digest_bits);
  return fp == 0 ? 1 : fp;  // zero marks an empty slot
}

std::size_t CounterHashParams::bucket1(std::span<const std::uint64_t> key) const {
  const rmt::HashUnit h(bucket_seed);
  return h.hash_fields(key, key_fields, 32) & (buckets - 1);
}

std::size_t CounterHashParams::alt_bucket(std::size_t bucket, std::uint64_t fp) const {
  const rmt::HashUnit h(alt_seed);
  const std::uint64_t fp_copy = fp;
  const net::FieldId fake_field[] = {net::FieldId::kMetaDigest};  // 32-bit input lane
  const std::uint32_t mix = h.hash_fields({&fp_copy, 1}, fake_field, 32);
  return (bucket ^ mix) & (buckets - 1);
}

CounterStore::CounterStore(rmt::SwitchAsic& asic, CounterStoreConfig cfg)
    : asic_(asic),
      cfg_(std::move(cfg)),
      fp_hash_(cfg_.hash.fp_seed),
      fifo_(asic.registers(), cfg_.name + ".kvfifo", cfg_.fifo_capacity, 4) {
  if (!is_power_of_two(cfg_.hash.buckets)) {
    throw std::invalid_argument("CounterStore " + cfg_.name + ": buckets must be a power of two");
  }
  if (cfg_.hash.key_fields.empty()) {
    throw std::invalid_argument("CounterStore " + cfg_.name + ": empty key");
  }
  if (cfg_.hash.digest_bits != 16 && cfg_.hash.digest_bits != 32) {
    throw std::invalid_argument("CounterStore " + cfg_.name + ": digest must be 16 or 32 bits");
  }
  auto& rf = asic_.registers();
  exact_ctrs_ = &rf.create(cfg_.name + ".exact", cfg_.exact_capacity, 64);
  slots_fp_ = &rf.create(cfg_.name + ".fp", cfg_.hash.buckets, 32);
  slots_cnt_ = &rf.create(cfg_.name + ".cnt", cfg_.hash.buckets, 64);

  // Resource declaration: exact table (SRAM), two logical cuckoo arrays
  // (SALU + SRAM), the FIFO counters, hash generators.
  double key_bits = 0;
  for (const auto f : cfg_.hash.key_fields) key_bits += net::field_width(f);
  // The key feeds the exact-match table, both cuckoo probes and the FIFO
  // stage; SALUs: two cuckoo arrays + two FIFO counters (+ the exact and
  // value-update ALUs for aggregating functions).
  const bool aggregates = cfg_.func != UpdateFunc::kDistinct;
  asic_.resources().add(
      cfg_.name,
      {.match_crossbar_bits = key_bits * 4,
       .sram_kb = (static_cast<double>(cfg_.exact_capacity) * (key_bits + 64) +
                   static_cast<double>(cfg_.hash.buckets) * (cfg_.hash.digest_bits + 64) +
                   static_cast<double>(cfg_.fifo_capacity) * 4 * 64) /
                  8.0 / 1024.0,
       .vliw_slots = 6,
       .hash_bits = (key_bits + cfg_.hash.digest_bits) * 2,
       .salu = aggregates ? 8.0 : 6.0,
       .gateway = 2});
}

std::string CounterStore::pack_key(std::span<const std::uint64_t> key) {
  std::string out;
  out.reserve(key.size() * 8);
  for (const std::uint64_t v : key) {
    for (int b = 0; b < 8; ++b) out.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
  }
  return out;
}

void CounterStore::install_exact_entries(const std::vector<std::vector<std::uint64_t>>& keys) {
  if (exact_index_.size() + keys.size() > cfg_.exact_capacity) {
    throw std::length_error("CounterStore " + cfg_.name + ": exact table capacity exceeded");
  }
  for (const auto& key : keys) {
    if (key.size() != cfg_.hash.key_fields.size()) {
      throw std::invalid_argument("CounterStore: exact key arity mismatch");
    }
    exact_index_.emplace(pack_key(key), exact_index_.size());
  }
}

std::vector<std::uint64_t> CounterStore::extract_key(const rmt::Phv& phv) const {
  std::vector<std::uint64_t> key;
  key.reserve(cfg_.hash.key_fields.size());
  for (const auto f : cfg_.hash.key_fields) key.push_back(phv.get(f));
  return key;
}

std::uint64_t CounterStore::apply_func(std::uint64_t current, std::uint64_t increment,
                                       bool fresh) const {
  switch (cfg_.func) {
    case UpdateFunc::kSum:
      return current + increment;
    case UpdateFunc::kCount:
      return current + 1;
    case UpdateFunc::kMax:
      return fresh ? increment : std::max(current, increment);
    case UpdateFunc::kMin:
      return fresh ? increment : std::min(current, increment);
    case UpdateFunc::kDistinct:
      return 1;
  }
  return current;
}

void CounterStore::evict_to_cpu(rmt::ActionContext& ctx, std::size_t bucket, std::uint64_t fp,
                                std::uint64_t count) {
  ++cpu_evictions_;
  if (ctx.emit_digest) {
    ctx.emit_digest(cfg_.eviction_digest_type, {cfg_.hash.canonical_id(bucket, fp), count});
  }
}

std::uint64_t CounterStore::update(rmt::ActionContext& ctx, std::uint64_t increment) {
  ++updates_;
  const auto key = extract_key(ctx.phv);

  // 1. Exact-key matching resolves precomputed collisions (Fig 4).
  const auto it = exact_index_.find(pack_key(key));
  if (it != exact_index_.end()) {
    ++exact_hits_;
    return exact_ctrs_->execute(it->second, [&](std::uint64_t& c) {
      c = apply_func(c, increment, c == 0);
      return c;
    });
  }

  // 2. Cuckoo probe: bucket1, then the fingerprint-derived alternate.
  const std::uint64_t fp = cfg_.hash.fingerprint(key);
  const std::size_t b1 = cfg_.hash.bucket1(key);
  const std::size_t b2 = cfg_.hash.alt_bucket(b1, fp);
  for (const std::size_t b : {b1, b2}) {
    const std::uint64_t slot_fp = slots_fp_->read(b);
    if (slot_fp == 0) {
      slots_fp_->write(b, fp);
      const std::uint64_t v = apply_func(0, increment, true);
      slots_cnt_->write(b, v);
      return v;
    }
    if (slot_fp == fp) {
      return slots_cnt_->execute(b, [&](std::uint64_t& c) {
        c = apply_func(c, increment, false);
        return c;
      });
    }
  }

  // 3. Both buckets taken by other flows: stage in the KV FIFO for the
  //    recirculation-driven cuckoo insertion (Fig 5).
  ++fifo_pushes_;
  const std::uint64_t initial = apply_func(0, increment, true);
  if (!fifo_.enqueue({fp, initial, b1, 0})) {
    // FIFO overflow (§6.1 limitation): report straight to the CPU.
    evict_to_cpu(ctx, b1, fp, initial);
  }
  return initial;
}

void CounterStore::maintenance_pass(rmt::ActionContext& ctx) {
  const auto rec = fifo_.dequeue();
  if (!rec) return;
  const std::uint64_t fp = (*rec)[0];
  const std::uint64_t cnt = (*rec)[1];
  const std::size_t bucket = static_cast<std::size_t>((*rec)[2]) & (cfg_.hash.buckets - 1);
  const std::uint64_t bounce = (*rec)[3];

  const std::uint64_t slot_fp = slots_fp_->read(bucket);
  if (slot_fp == 0) {
    slots_fp_->write(bucket, fp);
    slots_cnt_->write(bucket, cnt);
    return;
  }
  if (slot_fp == fp) {
    // Same flow already landed (e.g. a later packet inserted it): merge.
    slots_cnt_->execute(bucket, [&](std::uint64_t& c) {
      switch (cfg_.func) {
        case UpdateFunc::kMax:
          c = std::max(c, cnt);
          break;
        case UpdateFunc::kMin:
          c = std::min(c, cnt);
          break;
        case UpdateFunc::kDistinct:
          c = 1;
          break;
        default:
          c += cnt;
      }
      return c;
    });
    return;
  }

  // Displace the occupant (Fig 5b): the new pair takes the bucket, the old
  // pair moves toward its alternate bucket — or to the CPU when it has
  // bounced too long (the "old KV pair" eviction).
  const std::uint64_t old_cnt = slots_cnt_->read(bucket);
  slots_fp_->write(bucket, fp);
  slots_cnt_->write(bucket, cnt);
  if (bounce + 1 > cfg_.max_bounces) {
    evict_to_cpu(ctx, bucket, slot_fp, old_cnt);
    return;
  }
  const std::size_t alt = cfg_.hash.alt_bucket(bucket, slot_fp);
  if (!fifo_.enqueue({slot_fp, old_cnt, alt, bounce + 1})) {
    evict_to_cpu(ctx, bucket, slot_fp, old_cnt);
  }
}

std::uint64_t CounterStore::total_for_key(
    std::span<const std::uint64_t> key,
    const std::map<std::uint64_t, std::uint64_t>& cpu_evicted) const {
  const std::vector<std::uint64_t> key_vec(key.begin(), key.end());
  const auto it = exact_index_.find(pack_key(key_vec));
  if (it != exact_index_.end()) return exact_ctrs_->read(it->second);

  std::uint64_t total = 0;
  const std::uint64_t fp = cfg_.hash.fingerprint(key);
  const std::size_t b1 = cfg_.hash.bucket1(key);
  const std::size_t b2 = cfg_.hash.alt_bucket(b1, fp);
  total += slots_fp_->read(b1) == fp ? slots_cnt_->read(b1) : 0;
  if (b2 != b1) total += slots_fp_->read(b2) == fp ? slots_cnt_->read(b2) : 0;
  const std::uint64_t id = cfg_.hash.canonical_id(b1, fp);
  for (const auto& rec : fifo_.snapshot()) {
    if (rec[0] == fp &&
        cfg_.hash.canonical_id(static_cast<std::size_t>(rec[2]) & (cfg_.hash.buckets - 1),
                               rec[0]) == id) {
      total += rec[1];
    }
  }
  const auto ev = cpu_evicted.find(id);
  if (ev != cpu_evicted.end()) total += ev->second;
  return total;
}

std::uint64_t CounterStore::distinct_count(
    const std::map<std::uint64_t, std::uint64_t>& cpu_evicted) const {
  std::set<std::uint64_t> ids;
  for (std::size_t b = 0; b < cfg_.hash.buckets; ++b) {
    const std::uint64_t fp = slots_fp_->read(b);
    if (fp != 0) ids.insert(cfg_.hash.canonical_id(b, fp));
  }
  for (const auto& rec : fifo_.snapshot()) {
    ids.insert(cfg_.hash.canonical_id(static_cast<std::size_t>(rec[2]) & (cfg_.hash.buckets - 1),
                                      rec[0]));
  }
  for (const auto& [id, _] : cpu_evicted) ids.insert(id);
  std::uint64_t exact_seen = 0;
  for (std::size_t i = 0; i < exact_index_.size(); ++i) {
    if (exact_ctrs_->read(i) != 0) ++exact_seen;
  }
  return ids.size() + exact_seen;
}

std::map<std::uint64_t, std::uint64_t> CounterStore::dump_fingerprints() const {
  std::map<std::uint64_t, std::uint64_t> out;  // keyed by canonical id
  for (std::size_t b = 0; b < cfg_.hash.buckets; ++b) {
    const std::uint64_t fp = slots_fp_->read(b);
    if (fp != 0) out[cfg_.hash.canonical_id(b, fp)] += slots_cnt_->read(b);
  }
  for (const auto& rec : fifo_.snapshot()) {
    out[cfg_.hash.canonical_id(static_cast<std::size_t>(rec[2]) & (cfg_.hash.buckets - 1),
                               rec[0])] += rec[1];
  }
  return out;
}

std::size_t CounterStore::occupied_buckets() const {
  std::size_t n = 0;
  for (std::size_t b = 0; b < cfg_.hash.buckets; ++b) {
    if (slots_fp_->read(b) != 0) ++n;
  }
  return n;
}

}  // namespace ht::htpr
