# Empty dependencies file for fig16_stat_collection.
# This may be replaced when dependencies are built.
