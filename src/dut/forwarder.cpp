#include "dut/forwarder.hpp"

#include <cmath>

namespace ht::dut {

Forwarder::Forwarder(sim::EventQueue& ev, Config cfg) : ev_(ev), cfg_(cfg), rng_(cfg.seed) {
  ports_.reserve(cfg_.num_ports);
  route_.resize(cfg_.num_ports);
  for (std::size_t i = 0; i < cfg_.num_ports; ++i) {
    ports_.push_back(
        std::make_unique<sim::Port>(ev, static_cast<std::uint16_t>(i), cfg_.port_rate_gbps));
    route_[i] = i ^ 1;  // default: pairwise cross-connect
    ports_[i]->on_receive = [this, i](net::PacketPtr pkt) { on_packet(i, std::move(pkt)); };
  }
}

void Forwarder::set_route(std::size_t in, std::size_t out) { route_.at(in) = out; }

void Forwarder::on_packet(std::size_t in_port, net::PacketPtr pkt) {
  if (cfg_.loss_rate > 0 && rng_.bernoulli(cfg_.loss_rate)) {
    ++lost_;
    return;
  }
  const std::size_t out = route_[in_port];
  if (out >= ports_.size()) {
    ++lost_;
    return;
  }
  double delay = cfg_.forward_delay_ns;
  if (cfg_.delay_jitter_ns > 0) {
    delay = std::max(0.0, rng_.gaussian(delay, cfg_.delay_jitter_ns));
  }
  ++forwarded_;
  ev_.schedule_in(static_cast<sim::TimeNs>(std::llround(delay)),
                  [this, out, pkt = std::move(pkt)]() mutable {
                    ports_[out]->send(std::move(pkt));
                  });
}

}  // namespace ht::dut
