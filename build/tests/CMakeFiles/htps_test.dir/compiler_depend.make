# Empty compiler generated dependencies file for htps_test.
# This may be replaced when dependencies are built.
