#include "rmt/asic.hpp"

#include <cmath>
#include <stdexcept>

#include "net/headers.hpp"
#include "rmt/fastpath_hooks.hpp"

namespace ht::rmt {

SwitchAsic::SwitchAsic(sim::EventQueue& ev, AsicConfig cfg)
    : ev_(ev),
      cfg_(cfg),
      rng_(cfg.seed),
      parser_(Parser::default_graph()),
      ingress_("ingress", cfg.max_stages),
      egress_("egress", cfg.max_stages),
      digests_(ev, cfg.digest) {
  ports_.reserve(cfg_.num_ports);
  for (std::size_t i = 0; i < cfg_.num_ports; ++i) {
    auto p = std::make_unique<sim::Port>(ev_, static_cast<std::uint16_t>(i), cfg_.port_rate_gbps);
    p->on_receive = [this](net::PacketPtr pkt) { enter_ingress(std::move(pkt)); };
    ports_.push_back(std::move(p));
  }
  recirc_.resize(cfg_.num_recirc_channels);
  register_device_metrics();
}

void SwitchAsic::register_device_metrics() {
  // Registration order matters: drop_counters() reports in this order, and
  // the first three plus the per-port trio reproduce the historical
  // SwitchAsic::drop_counters() layout exactly.
  ingress_packets_ = &metrics_.counter("ht_asic_ingress_packets_total",
                                       {.help = "packets entering the ingress pipeline"});
  egress_packets_ = &metrics_.counter("ht_asic_egress_packets_total",
                                      {.help = "packets leaving the egress pipeline"});
  dropped_ = &metrics_.counter(
      "ht_asic_pipeline_drops_total",
      {.help = "packets dropped by pipeline verdict or an invalid egress port",
       .drop_source = "asic.pipeline_drops"});
  injected_drops_ = &metrics_.counter(
      "ht_asic_injected_drops_total",
      {.help = "packets dropped by the ASIC-internal fault hook before the parser",
       .drop_source = "asic.injected_drops"});
  metrics_.mirror_counter(
      "ht_asic_digest_drops_total", [this] { return digests_.dropped(); },
      {.help = "digest messages dropped on a full digest queue",
       .drop_source = "asic.digest_drops"});
  recirculations_ = &metrics_.counter(
      "ht_asic_recirculations_total",
      {.help = "packets looped through a recirculation channel"});
  replicas_ = &metrics_.counter("ht_asic_replicas_total",
                                {.help = "replicas created by the multicast engine"});
  for (std::size_t c = 0; c < recirc_.size(); ++c) {
    metrics_.mirror_counter(
        "ht_asic_recirc_loops_total", [this, c] { return recirc_[c].loops; },
        {.labels = {{"channel", std::to_string(c)}},
         .help = "loops through this recirculation channel"});
  }
  for (const auto& pp : ports_) {
    sim::Port* p = pp.get();
    const std::string n = std::to_string(p->id());
    const std::string prefix = "port" + n;
    metrics_.mirror_counter("ht_port_tx_packets_total", [p] { return p->tx_packets(); },
                            {.labels = {{"port", n}}, .help = "frames queued for transmission"});
    metrics_.mirror_counter("ht_port_rx_packets_total", [p] { return p->rx_packets(); },
                            {.labels = {{"port", n}}, .help = "frames delivered from the wire"});
    metrics_.mirror_gauge(
        "ht_tm_queue_depth",
        [p] { return static_cast<std::int64_t>(p->tx_queue_depth()); },
        {.labels = {{"port", n}}, .help = "frames in flight in the MAC egress queue"});
    metrics_.mirror_counter(
        "ht_port_queue_full_drops_total", [p] { return p->dropped_queue_full(); },
        {.labels = {{"port", n}}, .help = "frames tail-dropped on a full egress queue",
         .drop_source = prefix + ".queue_full"});
    metrics_.mirror_counter(
        "ht_port_no_peer_drops_total", [p] { return p->dropped_no_peer(); },
        {.labels = {{"port", n}}, .help = "frames sent with no wire attached",
         .drop_source = prefix + ".no_peer"});
    metrics_.mirror_counter(
        "ht_port_fcs_drops_total", [p] { return p->rx_fcs_drops(); },
        {.labels = {{"port", n}}, .help = "frames dropped by MAC FCS verification",
         .drop_source = prefix + ".fcs"});
    if constexpr (telemetry::kEnabled) {
      auto& h = metrics_.histogram(
          "ht_port_wire_latency_ns",
          {.labels = {{"port", n}},
           .help = "send() to last-bit-arrival per frame: queue wait + serialization + propagation"});
      p->set_telemetry(&h, &trace_);
      trace_.set_track_name(telemetry::TraceRecorder::kTrackPortBase + p->id(), "port" + n + " tx");
    }
  }
  if constexpr (telemetry::kEnabled) {
    trace_.set_track_name(telemetry::TraceRecorder::kTrackTask, "task");
    trace_.set_track_name(telemetry::TraceRecorder::kTrackIngress, "ingress pipeline");
    trace_.set_track_name(telemetry::TraceRecorder::kTrackEgress, "egress pipeline");
    trace_.set_track_name(telemetry::TraceRecorder::kTrackRecirc, "recirculation");
  }
}

sim::Port& SwitchAsic::port(std::uint16_t i) {
  if (i >= ports_.size()) throw std::out_of_range("SwitchAsic::port: " + std::to_string(i));
  return *ports_[i];
}

void SwitchAsic::inject_from_cpu(net::PacketPtr pkt) {
  pkt->meta().ingress_port = kCpuPort;
  const auto delay = static_cast<sim::TimeNs>(std::llround(cfg_.timing.pcie_injection_ns));
  ev_.schedule_in(delay, [this, pkt = std::move(pkt)]() mutable {
    pkt->meta().ingress_tstamp_ns = ev_.now();
    enter_ingress(std::move(pkt));
  });
}

void SwitchAsic::reset_program() {
  ingress_.clear();
  egress_.clear();
}

ActionContext SwitchAsic::make_ctx(Phv& phv) {
  return ActionContext{
      .phv = phv,
      .registers = registers_,
      .rng = rng_,
      .now = ev_.now(),
      .emit_digest =
          [this, &phv](std::uint32_t type, std::vector<std::uint64_t> values) {
            DigestMessage msg;
            msg.type = type;
            // Wire size: 8B record header plus 4B per value, matching the
            // digest formats used in the evaluation (16..256B messages).
            msg.byte_size = 8 + 4 * values.size();
            msg.values = std::move(values);
            (void)phv;
            digests_.emit(std::move(msg));
          },
  };
}

void SwitchAsic::enter_ingress(net::PacketPtr pkt) {
  if (ingress_fault_ && ingress_fault_(*pkt)) {
    injected_drops_->inc();
    return;
  }
  run_ingress(std::move(pkt));
}

std::vector<sim::DropCounter> SwitchAsic::drop_counters() const {
  std::vector<sim::DropCounter> out;
  for (auto& [source, count] : metrics_.drop_counters()) out.push_back({source, count});
  return out;
}

void SwitchAsic::run_ingress(net::PacketPtr pkt) {
  ingress_packets_->inc();
  if constexpr (telemetry::kEnabled) {
    if (trace_.enabled()) {
      trace_.complete("ingress", ev_.now(),
                      static_cast<std::uint64_t>(std::llround(cfg_.timing.ingress_latency_ns)),
                      telemetry::TraceRecorder::kTrackIngress);
    }
  }
  if (fastpath_ != nullptr) {
    IntrinsicMeta im;
    if (fastpath_->try_ingress(pkt, im)) {
      // Fused pass: no Phv was built, so `pkt` is the only live reference
      // and the traffic manager may recycle it as the last replica.
      to_traffic_manager(std::move(pkt), im);
      return;
    }
  }
  Phv phv = parser_.parse(pkt);
  ActionContext ctx = make_ctx(phv);
  ingress_.apply(ctx);
  Parser::deparse(phv);
  to_traffic_manager(std::move(pkt), phv.intrinsic());
}

void SwitchAsic::to_traffic_manager(net::PacketPtr pkt, IntrinsicMeta im) {
  // The TM hop is folded into the scheduling delays (ingress latency +
  // TM/mcast service time) — one event per replica instead of two.
  const double ingress = cfg_.timing.ingress_latency_ns;
  switch (im.dest) {
    case Destination::kDrop:
      dropped_->inc();
      return;
    case Destination::kUnicast: {
      const auto delay =
          static_cast<sim::TimeNs>(std::llround(ingress + cfg_.timing.tm_unicast_latency_ns));
      const std::uint16_t eport = im.ucast_port;
      ev_.schedule_in(delay, [this, pkt = std::move(pkt), eport]() mutable {
        run_egress(std::move(pkt), eport, 0);
      });
      return;
    }
    case Destination::kMulticast: {
      const auto& members = mcast_.members(im.mcast_group);
      if (members.empty()) return;
      const double mean = cfg_.timing.mcast_delay_ns(pkt->size());
      if (members.size() == 1) {
        // The common shape (one loop replica + one wire replica handled as
        // two singleton groups, or a plain single-member group): no
        // batch bookkeeping, no vector.
        const McastMember& m = members.front();
        // When the ingress pass kept no other reference (fused fast path),
        // the sole member can reuse the original buffer instead of copying.
        auto copy = pkt.use_count() == 1 ? std::move(pkt) : net::make_packet(*pkt);
        copy->meta().replica_index = m.rid;
        const double d =
            ingress + TimingModel::jittered(rng_, mean, cfg_.timing.mcast_jitter_sigma_ns);
        replicas_->inc();
        ev_.schedule_in(static_cast<sim::TimeNs>(std::llround(d)),
                        [this, copy = std::move(copy), port = m.port, rid = m.rid]() mutable {
                          run_egress(std::move(copy), port, rid);
                        });
        return;
      }
      // Group replicas by TM arrival tick so each distinct tick costs one
      // event instead of one per replica. Jitter is still drawn per member
      // in member order (the rng sequence is part of the determinism
      // contract), and groups are scheduled in first-occurrence order, so
      // replicas execute in exactly the order the per-replica schedule
      // produced: same-tick replicas were already consecutive by sequence.
      // The scratch vector is a member so the whole fan-out allocates
      // nothing once warm; a heap-backed batch is built only for the rare
      // multi-replica tick.
      auto& reps = mcast_scratch_;
      reps.clear();
      reps.reserve(members.size());
      for (std::size_t k = 0; k < members.size(); ++k) {
        const McastMember& m = members[k];
        // The last member can reuse the original buffer when no other
        // reference is alive (fused ingress) — the jitter draw order stays
        // exactly per-member-in-member-order either way.
        const bool reuse = k + 1 == members.size() && pkt.use_count() == 1;
        auto copy = reuse ? std::move(pkt) : net::make_packet(*pkt);
        copy->meta().replica_index = m.rid;
        const double d =
            ingress + TimingModel::jittered(rng_, mean, cfg_.timing.mcast_jitter_sigma_ns);
        replicas_->inc();
        reps.push_back(PendingReplica{static_cast<sim::TimeNs>(std::llround(d)),
                                      std::move(copy), m.port, m.rid});
      }
      for (std::size_t i = 0; i < reps.size(); ++i) {
        if (reps[i].pkt == nullptr) continue;  // already consumed by a batch
        std::size_t same = 0;
        for (std::size_t j = i + 1; j < reps.size(); ++j) {
          if (reps[j].pkt != nullptr && reps[j].tick == reps[i].tick) ++same;
        }
        if (same == 0) {
          ev_.schedule_in(reps[i].tick, [this, copy = std::move(reps[i].pkt),
                                         port = reps[i].port, rid = reps[i].rid]() mutable {
            run_egress(std::move(copy), port, rid);
          });
          continue;
        }
        EgressBatch batch;
        batch.reserve(same + 1);
        const sim::TimeNs tick = reps[i].tick;
        batch.push_back(EgressReplica{std::move(reps[i].pkt), reps[i].port, reps[i].rid});
        for (std::size_t j = i + 1; j < reps.size(); ++j) {
          if (reps[j].pkt != nullptr && reps[j].tick == tick) {
            batch.push_back(EgressReplica{std::move(reps[j].pkt), reps[j].port, reps[j].rid});
          }
        }
        ev_.schedule_in(tick, [this, batch = std::move(batch)]() mutable {
          run_egress_batch(std::move(batch));
        });
      }
      return;
    }
  }
}

void SwitchAsic::run_egress(net::PacketPtr pkt, std::uint16_t eport, std::uint16_t rid) {
  if (fastpath_ != nullptr && fastpath_->try_egress(pkt, eport, rid, ev_.now())) {
    finish_egress(std::move(pkt), eport);
    return;
  }
  Phv phv = parser_.parse(pkt);
  phv.intrinsic().rid = rid;
  phv.set(net::FieldId::kMetaEgressPort, eport);
  ActionContext ctx = make_ctx(phv);
  egress_.apply(ctx);
  phv.set(net::FieldId::kMetaEgressTstamp, ev_.now());
  Parser::deparse(phv);
  // The deparser's checksum engine only matters for packets that leave the
  // box; recirculating templates skip it (their headers are untouched).
  if (eport < ports_.size()) net::fix_checksums(*pkt);
  finish_egress(std::move(pkt), eport);
}

void SwitchAsic::finish_egress(net::PacketPtr pkt, std::uint16_t eport) {
  egress_packets_->inc();
  const auto delay = static_cast<sim::TimeNs>(std::llround(cfg_.timing.egress_latency_ns));
  if constexpr (telemetry::kEnabled) {
    if (trace_.enabled()) {
      trace_.complete("egress", ev_.now(), static_cast<std::uint64_t>(delay),
                      telemetry::TraceRecorder::kTrackEgress);
    }
  }
  // The emission time is a constant offset, so the emit runs inline with an
  // explicit `now` instead of through its own scheduled event — every
  // computed timestamp (egress_tstamp, wire serialization, recirc arrival)
  // is identical, one event per replica cheaper.
  emit(std::move(pkt), eport, ev_.now() + delay);
}

void SwitchAsic::run_egress_batch(EgressBatch batch) {
  // Every replica in a tick group is a clone of one template packet, so
  // either the whole batch is fused or none of it is: probe the first
  // replica and hold the rest to the same verdict.
  if (fastpath_ != nullptr && !batch.empty() &&
      fastpath_->try_egress(batch.front().pkt, batch.front().port, batch.front().rid,
                            ev_.now())) {
    for (std::size_t i = 1; i < batch.size(); ++i) {
      if (!fastpath_->try_egress(batch[i].pkt, batch[i].port, batch[i].rid, ev_.now())) {
        throw std::logic_error("SwitchAsic: mixed fused/interpreted egress batch");
      }
    }
    for (std::size_t i = 0; i < batch.size(); ++i) egress_packets_->inc();
    const auto fdelay = static_cast<sim::TimeNs>(std::llround(cfg_.timing.egress_latency_ns));
    if constexpr (telemetry::kEnabled) {
      if (trace_.enabled()) {
        trace_.complete("egress", ev_.now(), static_cast<std::uint64_t>(fdelay),
                        telemetry::TraceRecorder::kTrackEgress);
      }
    }
    const sim::TimeNs fat = ev_.now() + fdelay;
    for (EgressReplica& r : batch) emit(std::move(r.pkt), r.port, fat);
    return;
  }
  // Phase-batched egress for same-tick replicas. Parse and deparse touch
  // only per-packet state, so batching them is invisible; the pipeline walk
  // itself stays packet-outer (see Pipeline::apply_batch) so shared state
  // is touched in exactly the per-replica-event order.
  std::vector<Phv> phvs;
  phvs.reserve(batch.size());
  for (EgressReplica& r : batch) {
    if (phvs.empty()) {
      phvs.push_back(parser_.parse(r.pkt));
    } else {
      // Every replica in a tick group is a byte-identical clone of one
      // template packet, so the parse result differs only in which clone
      // the PHV points at — copy instead of re-parsing the same bytes.
      phvs.push_back(phvs.front());
      phvs.back().packet = r.pkt;
    }
    Phv& phv = phvs.back();
    phv.intrinsic().rid = r.rid;
    phv.set(net::FieldId::kMetaEgressPort, r.port);
  }
  {
    std::vector<ActionContext> ctxs;
    ctxs.reserve(phvs.size());
    for (Phv& phv : phvs) ctxs.push_back(make_ctx(phv));
    egress_.apply_batch(ctxs);
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Phv& phv = phvs[i];
    phv.set(net::FieldId::kMetaEgressTstamp, ev_.now());
    Parser::deparse(phv);
    if (batch[i].port < ports_.size()) net::fix_checksums(*batch[i].pkt);
    egress_packets_->inc();
  }
  const auto delay = static_cast<sim::TimeNs>(std::llround(cfg_.timing.egress_latency_ns));
  if constexpr (telemetry::kEnabled) {
    if (trace_.enabled()) {
      trace_.complete("egress", ev_.now(), static_cast<std::uint64_t>(delay),
                      telemetry::TraceRecorder::kTrackEgress);
    }
  }
  const sim::TimeNs at = ev_.now() + delay;
  for (EgressReplica& r : batch) emit(std::move(r.pkt), r.port, at);
}

void SwitchAsic::emit(net::PacketPtr pkt, std::uint16_t eport, sim::TimeNs now_ns) {
  if (eport == kCpuPort) {
    // The CPU punt hands off to software that reads the event clock, so it
    // keeps its own event at the emission time instead of running early.
    ev_.schedule_at(now_ns, [this, pkt = std::move(pkt)]() mutable {
      if (cpu_punt_) cpu_punt_(std::move(pkt));
    });
    return;
  }
  if (is_recirc_port(eport)) {
    if (!recirc_admin_up_) {
      ++recirc_admin_drops_;
      return;
    }
    RecircChannel& ch = recirc_[eport - kRecircPortBase];
    const double now = static_cast<double>(now_ns);
    const double start = std::max(now, ch.busy_until);
    const double ser = cfg_.timing.recirc_serialization_ns(pkt->size());
    ch.busy_until = start + ser;
    ++ch.loops;
    recirculations_->inc();
    const double arrive = start + ser +
                          TimingModel::jittered(rng_, cfg_.timing.recirc_fixed_ns,
                                                cfg_.timing.recirc_jitter_sigma_ns);
    if constexpr (telemetry::kEnabled) {
      if (trace_.enabled() && arrive >= now) {
        trace_.complete("recirc", now_ns,
                        static_cast<std::uint64_t>(std::llround(arrive - now)),
                        telemetry::TraceRecorder::kTrackRecirc);
      }
    }
    ev_.schedule_at(static_cast<sim::TimeNs>(std::llround(arrive)),
                    [this, pkt = std::move(pkt), eport]() mutable {
                      pkt->meta().recirc_count++;
                      pkt->meta().ingress_port = eport;
                      pkt->meta().ingress_tstamp_ns = ev_.now();
                      enter_ingress(std::move(pkt));
                    });
    return;
  }
  if (eport >= ports_.size()) {
    dropped_->inc();
    return;
  }
  pkt->meta().egress_port = eport;
  pkt->meta().egress_tstamp_ns = now_ns;
  ports_[eport]->send_at(now_ns, std::move(pkt));
}

}  // namespace ht::rmt
