// Forwarder: a store-and-forward device under test.
//
// Models the second Tofino switch of the paper's testbed (Fig 8) as seen
// by the tester: packets entering one port leave another after a
// configurable forwarding delay (optionally jittered). Used by delay
// testing (Fig 18) and loss testing (a loss rate can be injected).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/port.hpp"
#include "sim/random.hpp"

namespace ht::dut {

class Forwarder {
 public:
  struct Config {
    std::size_t num_ports = 2;
    double port_rate_gbps = 100.0;
    double forward_delay_ns = 600.0;  ///< switching latency
    double delay_jitter_ns = 0.0;
    double loss_rate = 0.0;  ///< i.i.d. packet loss probability
    std::uint64_t seed = 7;
  };

  Forwarder(sim::EventQueue& ev, Config cfg);

  sim::Port& port(std::size_t i) { return *ports_.at(i); }

  /// Route packets arriving on `in` out of `out` (defaults: 0<->1).
  void set_route(std::size_t in, std::size_t out);

  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t lost() const { return lost_; }
  double configured_delay_ns() const { return cfg_.forward_delay_ns; }

 private:
  void on_packet(std::size_t in_port, net::PacketPtr pkt);

  sim::EventQueue& ev_;
  Config cfg_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<sim::Port>> ports_;
  std::vector<std::size_t> route_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t lost_ = 0;
};

}  // namespace ht::dut
