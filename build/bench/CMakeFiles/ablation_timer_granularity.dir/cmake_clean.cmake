file(REMOVE_RECURSE
  "CMakeFiles/ablation_timer_granularity.dir/ablation_timer_granularity.cpp.o"
  "CMakeFiles/ablation_timer_granularity.dir/ablation_timer_granularity.cpp.o.d"
  "ablation_timer_granularity"
  "ablation_timer_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_timer_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
